/**
 * @file
 * Replayable counterexamples.
 *
 * A violating schedule serializes to a small text file: the config
 * name, the construction salt, the violation message, and one line
 * per choice-point decision. Loading the file and passing its
 * schedule to runSchedule() re-executes the exact interleaving — the
 * forced arbiter verifies (when, width, seq) at every choice point,
 * so a stale file against changed code reports divergence instead of
 * silently exploring something else.
 */

#ifndef UNET_CHECK_EXPLORE_REPLAY_HH
#define UNET_CHECK_EXPLORE_REPLAY_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "check/explore/explore.hh"

namespace unet::check::explore {

/** A deserialized counterexample. */
struct Replay
{
    std::string config;
    std::uint64_t configSalt = 0;
    std::string violation; ///< may be empty (manually built files)
    Schedule schedule;
};

/** Serialize to a stream. */
void writeReplay(std::ostream &os, const std::string &config_name,
                 std::uint64_t config_salt,
                 const std::string &violation,
                 const Schedule &schedule);

/** Parse from a stream; nullopt on malformed input. */
std::optional<Replay> readReplay(std::istream &is);

/** File convenience wrappers. @return false / nullopt on I/O error. */
bool saveReplay(const std::string &path,
                const std::string &config_name,
                std::uint64_t config_salt, const std::string &violation,
                const Schedule &schedule);
std::optional<Replay> loadReplay(const std::string &path);

} // namespace unet::check::explore

#endif // UNET_CHECK_EXPLORE_REPLAY_HH
