/**
 * @file
 * The exploration driver: DFS over decision prefixes.
 *
 * Every run executes one complete schedule. A schedule is identified
 * by its decision prefix up to the last non-default pick; the run for
 * that prefix forces it, then follows FIFO defaults, enqueueing each
 * untaken alternative as a new prefix. The root run is the empty
 * prefix (pure FIFO). This visits each schedule exactly once without
 * keeping any per-schedule state beyond the work queue.
 */

#include "check/explore/explore.hh"

#include <algorithm>
#include <deque>
#include <set>

#include "check/credits.hh"
#include "check/ownership.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/perturb.hh"

namespace unet::check::explore {

namespace {

/** Thrown out of pick() to abandon a run whose state digest was
 *  already fully expanded. It propagates through stepChoice() before
 *  any event fires, so the queue is still consistent when caught. */
struct PruneSignal
{};

/** The global invariant oracle: every enrolled checker, simulation
 *  wide — not scoped to the endpoint that happens to be active. */
void
globalInvariantSweep()
{
    CreditWindow::forEachEnrolled([](const CreditWindow &w) {
        if (w.windowLimit() != 0 && w.held() > w.windowLimit())
            UNET_PANIC("global credit sweep: ", w.held(),
                       " messages in flight of a ", w.windowLimit(),
                       "-message window");
    });
    OwnershipTracker::forEachEnrolled(
        [](const OwnershipTracker &t) { t.audit(); });
}

/** Digest of everything that distinguishes two exploration states.
 *  Sequence numbers are excluded (schedule history); anything that is
 *  pure history may only be *added* at the cost of weaker pruning,
 *  never removed if it affects the future. */
std::uint64_t
stateDigest(ConfigInstance &inst)
{
    obs::Digest d;
    sim::Simulation &sim = inst.simulation();
    sim::EventQueue &q = sim.events();
    d.mix(static_cast<std::uint64_t>(q.now()));
    d.mix(q.firedCount());
    // Fiber progress: distinguishes states whose queues and metrics
    // agree but whose process bodies sit at different resume points
    // (pure history in the digest sense — adding it only weakens
    // pruning, which is always sound).
    d.mix(sim.fiberProgress());
    // Suspension points: *why* each parked fiber is parked. A fiber
    // sleeping in delay() and one blocked in waitOn() with a timeout
    // can leave identical queues, resume counts, and metrics, yet a
    // future notifyAll() wakes only the latter — states that conflate
    // them would over-prune (ROADMAP item closed in PR 10).
    d.mix(sim.suspensionDigest());
    for (const auto &[dt, order] : q.pendingProfile()) {
        d.mix(static_cast<std::uint64_t>(dt));
        d.mix(static_cast<std::uint64_t>(order));
    }
    d.mix(obs::digestOf(sim.metrics()));

    // Enrolled checker state, combined commutatively: enrollment
    // order reflects construction history, which two equal states may
    // not share.
    std::uint64_t sum = 0;
    std::uint64_t x = 0;
    CreditWindow::forEachEnrolled([&](const CreditWindow &w) {
        std::uint64_t h = w.stateHash();
        sum += h;
        x ^= h;
    });
    OwnershipTracker::forEachEnrolled([&](const OwnershipTracker &t) {
        std::uint64_t h = t.stateHash();
        sum += h;
        x ^= h;
    });
    d.mix(sum).mix(x);

    inst.mixState(d);
    return d.value();
}

/** Arbiter for one run: forces the prefix, then defaults + branches. */
class RunController : public sim::ScheduleArbiter
{
  public:
    RunController(const Schedule &prefix, const Options &opts,
                  ConfigInstance &inst,
                  std::set<std::uint64_t> &visited, bool branching)
        : prefix(prefix), opts(opts), inst(inst), visited(visited),
          branching(branching)
    {}

    std::size_t
    pick(sim::Tick now,
         const std::vector<Candidate> &candidates) override
    {
        ++choicePoints;
        maxEligible = std::max(maxEligible, candidates.size());
        const std::size_t depth = decisions.size();
        const std::size_t width = candidates.size();
        std::size_t chosen = 0;

        if (depth < prefix.size()) {
            const Decision &want = prefix[depth];
            if (want.width != width || want.when != now ||
                want.index >= width ||
                candidates[want.index].seq != want.seq)
                UNET_PANIC("schedule divergence at choice ", depth,
                           ": recorded (when=", want.when,
                           " width=", want.width,
                           " index=", want.index, " seq=", want.seq,
                           "); live (when=", now, " width=", width,
                           ")");
            chosen = want.index;
        } else if (!branching) {
            UNET_PANIC("replay schedule exhausted: unrecorded choice "
                       "point at t=", now, " (width ", width, ")");
        } else {
            // Free region: prune repeated states, branch the rest.
            if (opts.prune &&
                !visited.insert(stateDigest(inst)).second)
                throw PruneSignal{};
            enqueueAlternatives(now, candidates);
        }

        decisions.push_back(
            Decision{inst.simulation().events().firedCount(), now,
                     width, chosen, candidates[chosen].seq});
        return chosen;
    }

    const Schedule &prefix;
    const Options &opts;
    ConfigInstance &inst;
    std::set<std::uint64_t> &visited;
    bool branching;

    Schedule decisions;
    std::vector<Schedule> alternatives;
    std::uint64_t choicePoints = 0;
    std::uint64_t deferred = 0;
    std::size_t maxEligible = 0;

  private:
    void
    enqueueAlternatives(sim::Tick now,
                        const std::vector<Candidate> &candidates)
    {
        const std::size_t width = candidates.size();
        const std::size_t alts = width - 1;
        if (opts.bounds.maxChoiceDepth &&
            decisions.size() >= opts.bounds.maxChoiceDepth) {
            deferred += alts;
            return;
        }
        std::size_t take = alts;
        if (opts.bounds.maxBranchWidth)
            take = std::min(alts, opts.bounds.maxBranchWidth - 1);
        deferred += alts - take;

        // Deterministic frontier sampling: when bounded, keep a
        // salted rotation of the alternative list so different
        // sampling salts cover different subsets of the frontier.
        std::size_t start = 0;
        if (take < alts)
            start = static_cast<std::size_t>(
                sim::perturb::mix(opts.bounds.samplingSalt,
                                  ++sampleCounter) %
                alts);

        std::uint64_t step =
            inst.simulation().events().firedCount();
        for (std::size_t k = 0; k < take; ++k) {
            std::size_t idx = 1 + (start + k) % alts;
            Schedule alt = decisions;
            alt.push_back(Decision{step, now, width, idx,
                                   candidates[idx].seq});
            alternatives.push_back(std::move(alt));
        }
    }

    std::uint64_t sampleCounter = 0;
};

enum class RunKind { normal, pruned, violated };

struct RunResult
{
    RunKind kind = RunKind::normal;
    std::string message;
};

/** Drive one run to completion under @p arbiter (nullable: salted
 *  tie-break), evaluating the oracles after every event. */
RunResult
executeRun(ConfigInstance &inst, sim::ScheduleArbiter *arbiter,
           std::uint64_t max_steps, std::uint64_t &steps_out)
{
    sim::EventQueue &q = inst.simulation().events();
    q.setArbiter(arbiter);
    RunResult rr;
    std::uint64_t steps = 0;
    try {
        while (q.step()) {
            ++steps;
            inst.checkStep();
            globalInvariantSweep();
            if (max_steps && steps >= max_steps && !q.empty())
                UNET_PANIC("run exceeded the ", max_steps,
                           "-event step bound (livelock?)");
        }
        inst.checkEnd();
    } catch (const PruneSignal &) {
        rr.kind = RunKind::pruned;
    } catch (const sim::PanicException &e) {
        rr.kind = RunKind::violated;
        rr.message = e.what();
    }
    q.setArbiter(nullptr);
    steps_out = steps;
    return rr;
}

std::unique_ptr<ConfigInstance>
makeInstance(const Config &config, std::uint64_t config_salt)
{
    sim::perturb::ScopedSalt salt(config_salt);
    return config.make();
}

} // namespace

Result
explore(const Config &config, const Options &options)
{
    Result res;
    sim::ScopedPanicThrows throws_on;
    std::deque<Schedule> work;
    work.push_back({});
    std::set<std::uint64_t> visited;
    bool hit_run_bound = false;

    while (!work.empty()) {
        if (options.bounds.maxRuns &&
            res.runs >= options.bounds.maxRuns) {
            hit_run_bound = true;
            break;
        }
        Schedule prefix = std::move(work.front());
        work.pop_front();

        auto inst = makeInstance(config, options.configSalt);
        RunController ctl(prefix, options, *inst, visited,
                          /*branching=*/true);
        std::uint64_t run_index = res.runs++;
        std::uint64_t steps = 0;
        RunResult rr = executeRun(*inst, &ctl,
                                  options.bounds.maxStepsPerRun,
                                  steps);

        // Alternatives found before a prune/violation abort are
        // still valid prefixes; merge in every outcome.
        res.choicePoints += ctl.choicePoints;
        res.deferredBranches += ctl.deferred;
        res.maxEligible = std::max(res.maxEligible, ctl.maxEligible);
        for (Schedule &alt : ctl.alternatives)
            work.push_back(std::move(alt));

        if (rr.kind == RunKind::pruned) {
            ++res.prunedRuns;
        } else if (rr.kind == RunKind::violated) {
            res.violations.push_back(Violation{
                std::move(rr.message), run_index, ctl.decisions});
            if (options.stopAtFirstViolation)
                return res; // complete stays false
        }
    }

    res.complete = !hit_run_bound && work.empty() &&
                   res.deferredBranches == 0 && res.violations.empty();
    return res;
}

RunOutcome
runSchedule(const Config &config, const Schedule &schedule,
            std::uint64_t config_salt, std::uint64_t max_steps)
{
    sim::ScopedPanicThrows throws_on;
    Options options;
    options.prune = false;

    auto inst = makeInstance(config, config_salt);
    std::set<std::uint64_t> visited;
    RunController ctl(schedule, options, *inst, visited,
                      /*branching=*/false);
    RunOutcome out;
    RunResult rr = executeRun(*inst, &ctl, max_steps, out.steps);
    out.violated = rr.kind == RunKind::violated;
    out.message = std::move(rr.message);
    out.schedule = std::move(ctl.decisions);
    out.digest = stateDigest(*inst);
    return out;
}

RunOutcome
runSalted(const Config &config, std::uint64_t salt,
          std::uint64_t max_steps)
{
    sim::ScopedPanicThrows throws_on;
    auto inst = makeInstance(config, salt);
    RunOutcome out;
    RunResult rr = executeRun(*inst, nullptr, max_steps, out.steps);
    out.violated = rr.kind == RunKind::violated;
    out.message = std::move(rr.message);
    out.digest = stateDigest(*inst);
    return out;
}

} // namespace unet::check::explore
