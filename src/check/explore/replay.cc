#include "check/explore/replay.hh"

#include <fstream>
#include <sstream>

namespace unet::check::explore {

namespace {

constexpr const char *magic = "unet-explore-replay v1";

} // namespace

void
writeReplay(std::ostream &os, const std::string &config_name,
            std::uint64_t config_salt, const std::string &violation,
            const Schedule &schedule)
{
    os << magic << "\n";
    os << "config " << config_name << "\n";
    os << "salt " << config_salt << "\n";
    if (!violation.empty()) {
        // The message is free text; keep it one line.
        std::string one_line = violation;
        for (char &c : one_line)
            if (c == '\n' || c == '\r')
                c = ' ';
        os << "violation " << one_line << "\n";
    }
    os << "decisions " << schedule.size() << "\n";
    for (const Decision &d : schedule)
        os << d.step << " " << d.when << " " << d.width << " "
           << d.index << " " << d.seq << "\n";
}

std::optional<Replay>
readReplay(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != magic)
        return std::nullopt;

    Replay replay;
    std::size_t count = 0;
    bool have_count = false;
    while (!have_count && std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "config") {
            ls >> replay.config;
        } else if (key == "salt") {
            ls >> replay.configSalt;
            if (ls.fail())
                return std::nullopt;
        } else if (key == "violation") {
            std::getline(ls, replay.violation);
            if (!replay.violation.empty() &&
                replay.violation.front() == ' ')
                replay.violation.erase(0, 1);
        } else if (key == "decisions") {
            ls >> count;
            if (ls.fail())
                return std::nullopt;
            have_count = true;
        } else {
            return std::nullopt; // unknown header line
        }
    }
    if (!have_count || replay.config.empty())
        return std::nullopt;

    replay.schedule.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Decision d;
        if (!(is >> d.step >> d.when >> d.width >> d.index >> d.seq))
            return std::nullopt;
        replay.schedule.push_back(d);
    }
    return replay;
}

bool
saveReplay(const std::string &path, const std::string &config_name,
           std::uint64_t config_salt, const std::string &violation,
           const Schedule &schedule)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeReplay(out, config_name, config_salt, violation, schedule);
    return static_cast<bool>(out);
}

std::optional<Replay>
loadReplay(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return readReplay(in);
}

} // namespace unet::check::explore
