/**
 * @file
 * Closed configurations for the model checker.
 *
 * Each config is a small, fully self-contained simulation — nodes,
 * processes, traffic, and oracles — rebuilt from scratch for every
 * explored run. Kept deliberately tiny: the schedule space grows with
 * the number of same-tick permutable events, and these rigs exist to
 * be enumerated, not to be representative workloads.
 *
 *   fig5        two-node FE ping-pong (the Figure 5 rig), two rounds
 *               with distinct lengths for the in-order oracle
 *   retransmit  burst loss on the A->B link inside an AM window;
 *               exactly-once delivery through Go-Back-N recovery
 *   demux       three same-tick senders into three endpoints on one
 *               receiving node: the receive-demux race
 *   seeded-credit-bug
 *               six permutable same-tick events with a planted credit
 *               double-return on exactly one of the 720 orderings —
 *               the regression that salts miss and exploration finds
 *   sendv-race  three fibers on one ATM host post overlapping sendv
 *               descriptor trains while the i960 firmware's tx polls
 *               race the doorbells; exactly-once, in-order,
 *               credit-conservation oracles
 *   atm-cmdqueue
 *               two fibers on one ATM host post scalar sends, one
 *               doorbell command each, while the i960's per-endpoint
 *               tx polls race the command queue; exactly-once,
 *               in-order oracles
 *   upcall      two sender nodes race into one receiving endpoint in
 *               the upcall (signal-handler) receive model; per-lane
 *               exactly-once, in-order oracles over the activation
 *               batching
 *   ep-evict    three senders fire into a node whose endpoint hot set
 *               holds 2 of 3 endpoints while a local fiber sends from
 *               the paged-out one: receive demux races LRU eviction,
 *               the send races its own page-in; exactly-once,
 *               capacity, and pin-safety oracles
 */

#include <memory>
#include <string>
#include <vector>

#include "am/active_messages.hh"
#include "atm/link.hh"
#include "check/credits.hh"
#include "check/explore/explore.hh"
#include "eth/hub.hh"
#include "eth/link.hh"
#include "eth/switch.hh"
#include "fault/attach.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"
#include "unet/unet_atm.hh"
#include "unet/unet_fe.hh"

namespace unet::check::explore {

namespace {

/** One Fast Ethernet node: host + DC21140 + in-kernel U-Net. */
struct FeNodeRig
{
    FeNodeRig(sim::Simulation &s, eth::Network &net, int index,
              UNetFeSpec fe_spec = {})
        : host(s, "node" + std::to_string(index),
               host::CpuSpec::pentium120(), host::BusSpec::pci()),
          nic(host, net,
              eth::MacAddress::fromIndex(
                  static_cast<std::uint32_t>(index + 1))),
          unet(host, nic, fe_spec)
    {}

    host::Host host;
    nic::Dc21140 nic;
    UNetFe unet;
};

/** Post one single-fragment send (the only TX path U-Net/FE has). */
bool
sendFragment(UNet &un, sim::Process &proc, Endpoint &ep,
             ChannelId chan, std::uint32_t offset, std::uint32_t len)
{
    SendDescriptor sd;
    sd.channel = chan;
    sd.isInline = false;
    sd.fragmentCount = 1;
    sd.fragments[0] = {offset, len};
    return un.send(proc, ep, sd);
}

/** Mix an endpoint's externally visible queue state. */
void
mixEndpoint(obs::Digest &d, const Endpoint &ep)
{
    d.mix(static_cast<std::uint64_t>(ep.sendQueue().size()));
    auto &mut = const_cast<Endpoint &>(ep);
    d.mix(static_cast<std::uint64_t>(mut.recvQueue().size()));
    d.mix(static_cast<std::uint64_t>(mut.freeQueue().size()));
}

// ---------------------------------------------------------------- fig5

/** Two-node ping-pong over a hub, as the Figure 5 latency rig. */
class Fig5Instance : public ConfigInstance
{
  public:
    static constexpr int rounds = 2;

    static std::uint32_t
    length(int round)
    {
        // Distinct per-round lengths make reordering observable; both
        // are under smallMessageMax, so receives are descriptor-inline
        // and the rig needs no free-queue traffic.
        return 40 + 8 * static_cast<std::uint32_t>(round);
    }

    Fig5Instance()
        : hub(s), a(s, hub, 0), b(s, hub, 1),
          ping(s, "ping", [this](sim::Process &p) { pingBody(p); }),
          echo(s, "echo", [this](sim::Process &p) { echoBody(p); })
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 32 * 1024;
        epA = &a.unet.createEndpoint(&ping, cfg);
        epB = &b.unet.createEndpoint(&echo, cfg);
        UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
        echo.start();
        ping.start(sim::microseconds(5));
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        epA->auditRings();
        epB->auditRings();
        if (epA->rxQueueDrops() || epB->rxQueueDrops())
            UNET_PANIC("fig5: receive-queue drop in a lossless rig");
    }

    void
    checkEnd() override
    {
        if (!ping.finished() || !echo.finished())
            UNET_PANIC("fig5: deadlock (ping finished=",
                       ping.finished() ? 1 : 0, ", echo finished=",
                       echo.finished() ? 1 : 0, ")");
        if (echoSeen.size() != rounds || pingSeen.size() != rounds)
            UNET_PANIC("fig5: exactly-once violated: echo saw ",
                       echoSeen.size(), ", ping saw ", pingSeen.size(),
                       " of ", rounds, " messages");
        for (int r = 0; r < rounds; ++r) {
            if (echoSeen[static_cast<std::size_t>(r)] != length(r))
                UNET_PANIC("fig5: in-order violated at echo round ", r,
                           ": got length ",
                           echoSeen[static_cast<std::size_t>(r)],
                           ", expected ", length(r));
            if (pingSeen[static_cast<std::size_t>(r)] != length(r))
                UNET_PANIC("fig5: in-order violated at ping round ", r,
                           ": got length ",
                           pingSeen[static_cast<std::size_t>(r)],
                           ", expected ", length(r));
        }
    }

    void
    mixState(obs::Digest &d) const override
    {
        d.mix(static_cast<std::uint64_t>(pingSeen.size()));
        for (std::uint32_t v : pingSeen)
            d.mix(static_cast<std::uint64_t>(v));
        d.mix(static_cast<std::uint64_t>(echoSeen.size()));
        for (std::uint32_t v : echoSeen)
            d.mix(static_cast<std::uint64_t>(v));
        d.mix(static_cast<std::uint64_t>(ping.finished()));
        d.mix(static_cast<std::uint64_t>(echo.finished()));
        mixEndpoint(d, *epA);
        mixEndpoint(d, *epB);
    }

  private:
    void
    pingBody(sim::Process &self)
    {
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!sendFragment(a.unet, self, *epA, chanA, 16384,
                              length(r)))
                UNET_PANIC("fig5: ping send ", r, " refused");
            a.unet.flush(self, *epA);
            if (!epA->wait(self, rd, sim::seconds(1)))
                UNET_PANIC("fig5: ping timed out in round ", r);
            pingSeen.push_back(rd.length);
        }
    }

    void
    echoBody(sim::Process &self)
    {
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!epB->wait(self, rd, sim::seconds(1)))
                UNET_PANIC("fig5: echo timed out in round ", r);
            echoSeen.push_back(rd.length);
            if (!sendFragment(b.unet, self, *epB, chanB, 16384,
                              rd.length))
                UNET_PANIC("fig5: echo send ", r, " refused");
            b.unet.flush(self, *epB);
        }
    }

    sim::Simulation s;
    eth::Hub hub;
    FeNodeRig a, b;
    sim::Process ping, echo;
    Endpoint *epA = nullptr;
    Endpoint *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::vector<std::uint32_t> pingSeen, echoSeen;
};

// ---------------------------------------------------------- retransmit

/** Burst loss inside an AM send window, with symmetric bidirectional
 *  traffic: both sides fire their requests from the same tick (the
 *  same-tick concurrency the explorer permutes), the fault plane
 *  drops a burst in the A->B direction, and Go-Back-N must recover
 *  to exactly-once, in-order delivery with all credits returned. */
class RetransmitInstance : public ConfigInstance
{
  public:
    static constexpr std::uint32_t messages = 3;

    RetransmitInstance()
        : link(s), a(s, link, 0), b(s, link, 1),
          procA(s, "A", [this](sim::Process &p) { body(p, 0); }),
          procB(s, "B", [this](sim::Process &p) { body(p, 1); })
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 16;
        cfg.recvQueueDepth = 16;
        cfg.freeQueueDepth = 16;
        cfg.bufferAreaBytes = 64 * 1024;
        epA = &a.unet.createEndpoint(&procA, cfg);
        epB = &b.unet.createEndpoint(&procB, cfg);
        UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

        amA = std::make_unique<am::ActiveMessages>(a.unet, *epA);
        amB = std::make_unique<am::ActiveMessages>(b.unet, *epB);
        amA->openChannel(chanA);
        amB->openChannel(chanB);
        amA->setHandler(
            1, [this](sim::Process &, am::Token, const am::Args &args,
                      std::span<const std::uint8_t>) {
                received[0].push_back(args[0]);
            });
        amB->setHandler(
            1, [this](sim::Process &, am::Token, const am::Args &args,
                      std::span<const std::uint8_t>) {
                received[1].push_back(args[0]);
            });

        // Deterministic burst: the 2nd and 3rd frames crossing the
        // A->B direction are dropped (direction 0 belongs to the
        // first-attached station, node a). Consumes no randomness.
        plan.model("eth.link.0").dropUnits = {1, 2};
        fault::attach(plan, s, link);

        // Same tick on both sides: their request trains and the
        // crossing ACK/data traffic are the permutable events.
        procA.start(sim::microseconds(5));
        procB.start(sim::microseconds(5));
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        epA->auditRings();
        epB->auditRings();
    }

    void
    checkEnd() override
    {
        if (!procA.finished() || !procB.finished())
            UNET_PANIC("retransmit: deadlock (A finished=",
                       procA.finished() ? 1 : 0, ", B finished=",
                       procB.finished() ? 1 : 0, ")");
        for (int side = 0; side < 2; ++side) {
            const auto &ids = received[side];
            if (ids.size() != messages)
                UNET_PANIC("retransmit: exactly-once violated on side ",
                           side, ": handler ran ", ids.size(),
                           " times for ", messages, " requests");
            for (std::uint32_t i = 0; i < messages; ++i)
                if (ids[i] != i)
                    UNET_PANIC("retransmit: in-order violated on side ",
                               side, " at ", i, ": got id ", ids[i]);
        }
        if (amA->retransmits() == 0)
            UNET_PANIC("retransmit: the loss burst was never "
                       "exercised (no retransmissions)");
        CreditWindow::forEachEnrolled([](const CreditWindow &w) {
            if (w.held() != 0)
                UNET_PANIC("retransmit: ", w.held(),
                           " credits still held after drain");
        });
    }

    void
    mixState(obs::Digest &d) const override
    {
        for (int side = 0; side < 2; ++side) {
            d.mix(static_cast<std::uint64_t>(received[side].size()));
            for (am::Word v : received[side])
                d.mix(static_cast<std::uint64_t>(v));
        }
        d.mix(amA->sent());
        d.mix(amA->retransmits());
        d.mix(amA->received());
        d.mix(amB->sent());
        d.mix(amB->received());
        d.mix(amB->duplicates());
        d.mix(static_cast<std::uint64_t>(procA.finished()));
        d.mix(static_cast<std::uint64_t>(procB.finished()));
        mixEndpoint(d, *epA);
        mixEndpoint(d, *epB);
    }

  private:
    void
    body(sim::Process &p, int side)
    {
        am::ActiveMessages &am = side == 0 ? *amA : *amB;
        ChannelId chan = side == 0 ? chanA : chanB;
        for (std::uint32_t i = 0; i < messages; ++i)
            if (!am.request(p, chan, 1, {i, 0, 0, 0}))
                UNET_PANIC("retransmit: side ", side, " request ", i,
                           " refused");
        if (!am.drain(p, sim::seconds(1)))
            UNET_PANIC("retransmit: side ", side, " drain timed out");
        if (!am.pollUntil(
                p,
                [this, side] {
                    return received[side].size() >= messages;
                },
                sim::seconds(1)))
            UNET_PANIC("retransmit: side ", side, " receive timed out");
        // Let the final ACK flush so the peer's drain succeeds.
        am.pollUntil(p, [] { return false; }, sim::milliseconds(2));
    }

    sim::Simulation s;
    eth::FullDuplexLink link;
    FeNodeRig a, b;
    sim::Process procA, procB;
    Endpoint *epA = nullptr;
    Endpoint *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<am::ActiveMessages> amA, amB;
    std::vector<am::Word> received[2];

    /** Declared last: armed injectors register metrics in s's
     *  registry and must deregister before it dies. */
    fault::Plan plan;
};

// --------------------------------------------------------------- demux

/** Three sender nodes fire at the same tick into three endpoints of
 *  one receiving node (over a switch, so no CSMA/CD backoff widens
 *  the space): whatever order the frames reach the receive demux,
 *  each message must land on its own endpoint, exactly once. */
class DemuxInstance : public ConfigInstance
{
  public:
    static constexpr int lanes = 3;

    static std::uint32_t
    length(int lane)
    {
        return 40 + static_cast<std::uint32_t>(lane);
    }

    DemuxInstance() : sw(s), b(s, sw, lanes)
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 16 * 1024;
        for (int i = 0; i < lanes; ++i) {
            nodes.push_back(std::make_unique<FeNodeRig>(s, sw, i));
            senders.push_back(std::make_unique<sim::Process>(
                s, "send" + std::to_string(i),
                [this, i](sim::Process &p) { senderBody(p, i); }));
            epA.push_back(&nodes[static_cast<std::size_t>(i)]
                               ->unet.createEndpoint(
                                   senders.back().get(), cfg));
            // Receiver endpoints have no process: messages are small,
            // land descriptor-inline, and are polled at the end.
            epB.push_back(&b.unet.createEndpoint(nullptr, cfg));
            ChannelId ca = invalidChannel, cb = invalidChannel;
            UNetFe::connect(nodes[static_cast<std::size_t>(i)]->unet,
                            *epA.back(), b.unet, *epB.back(), ca, cb);
            chans.push_back(ca);
        }
        for (auto &proc : senders)
            proc->start(sim::microseconds(10)); // same tick: the race
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        for (int i = 0; i < lanes; ++i) {
            epA[static_cast<std::size_t>(i)]->auditRings();
            epB[static_cast<std::size_t>(i)]->auditRings();
        }
    }

    void
    checkEnd() override
    {
        for (auto &proc : senders)
            if (!proc->finished())
                UNET_PANIC("demux: sender ", proc->name(),
                           " did not finish");
        for (int i = 0; i < lanes; ++i) {
            Endpoint &ep = *epB[static_cast<std::size_t>(i)];
            RecvDescriptor rd;
            if (!ep.poll(rd))
                UNET_PANIC("demux: endpoint ", i, " received nothing");
            if (!rd.isSmall || rd.length != length(i))
                UNET_PANIC("demux: endpoint ", i, " got a ", rd.length,
                           "-byte message, expected ", length(i),
                           " (misrouted demux)");
            if (ep.poll(rd))
                UNET_PANIC("demux: endpoint ", i,
                           " received more than one message");
        }
    }

    void
    mixState(obs::Digest &d) const override
    {
        for (int i = 0; i < lanes; ++i) {
            d.mix(static_cast<std::uint64_t>(
                senders[static_cast<std::size_t>(i)]->finished()));
            mixEndpoint(d, *epA[static_cast<std::size_t>(i)]);
            mixEndpoint(d, *epB[static_cast<std::size_t>(i)]);
        }
    }

  private:
    void
    senderBody(sim::Process &self, int i)
    {
        UNetFe &un = nodes[static_cast<std::size_t>(i)]->unet;
        Endpoint &ep = *epA[static_cast<std::size_t>(i)];
        if (!sendFragment(un, self, ep,
                          chans[static_cast<std::size_t>(i)], 0,
                          length(i)))
            UNET_PANIC("demux: sender ", i, " refused");
        un.flush(self, ep);
    }

    sim::Simulation s;
    eth::Switch sw;
    FeNodeRig b;
    std::vector<std::unique_ptr<FeNodeRig>> nodes;
    std::vector<std::unique_ptr<sim::Process>> senders;
    std::vector<Endpoint *> epA, epB;
    std::vector<ChannelId> chans;
};

// --------------------------------------------------- seeded-credit-bug

/**
 * The planted order-dependence regression. Six permutable events share
 * one tick; exactly one of the 720 orderings trips a credit
 * double-return (an extra release() beyond the two held credits),
 * which the CreditWindow checker reports as an underflow. The trigger
 * order is chosen so that the salted tie-break misses it for every
 * salt in 0..100 (verified by the test suite) — only enumeration
 * finds it.
 */
class SeededBugInstance : public ConfigInstance
{
  public:
    static constexpr int events = 6;

    /** The one firing order (of 720) that trips the planted bug. */
    static const std::vector<int> &
    buggyOrder()
    {
        static const std::vector<int> order = {3, 1, 4, 0, 5, 2};
        return order;
    }

    SeededBugInstance()
    {
        window.setLimit(4);
        window.acquire();
        window.acquire();
        for (int i = 0; i < events; ++i)
            s.scheduleIn(sim::microseconds(10),
                         [this, i] { fired(i); });
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkEnd() override
    {
        if (order.size() != events)
            UNET_PANIC("seeded-credit-bug: only ", order.size(), " of ",
                       events, " events fired");
    }

    void
    mixState(obs::Digest &d) const override
    {
        d.mix(static_cast<std::uint64_t>(order.size()));
        for (int v : order)
            d.mix(static_cast<std::uint64_t>(v));
        d.mix(window.stateHash());
    }

  private:
    void
    fired(int i)
    {
        order.push_back(i);
        if (order.size() == events && order == buggyOrder()) {
            // The planted bug: this interleaving releases one credit
            // more than it holds. The third release underflows and
            // the checker panics.
            window.release();
            window.release();
            window.release();
        }
    }

    sim::Simulation s;
    CreditWindow window;
    std::vector<int> order;
};

// ---------------------------------------------------------- sendv-race

/**
 * Batched-submission race on one ATM adapter. Three fibers on host A,
 * each owning its own endpoint on the SAME PCA-200, post overlapping
 * sendv descriptor trains from one wakeup tick; the i960's weighted tx
 * polls (one poll event per endpoint, racing each other and the
 * doorbells) drain all trains onto one shared fiber toward host B.
 * Oracles: per-lane exactly-once, in-order delivery; ring audits each
 * step; a per-lane CreditWindow that must drain to zero (checked
 * globally by the explorer's invariant sweep at every choice point).
 */
class SendvRaceInstance : public ConfigInstance
{
  public:
    static constexpr int lanes = 3;
    static constexpr std::uint32_t batch = 2;

    static std::uint32_t
    length(int lane, std::uint32_t k)
    {
        // Single-cell (<= 40 bytes) so receives land descriptor-inline
        // and the rig needs no free-queue traffic; distinct per-lane,
        // per-position lengths make misrouting and reordering visible.
        return 16 + 8 * static_cast<std::uint32_t>(lane) + k;
    }

    SendvRaceInstance()
        : link(s, atm::LinkSpec::oc3()),
          hostA(s, "a", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          hostB(s, "b", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          nicA(hostA, link), nicB(hostB, link), ua(hostA, nicA),
          ub(hostB, nicB)
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 16 * 1024;
        for (int i = 0; i < lanes; ++i) {
            senders.push_back(std::make_unique<sim::Process>(
                s, "send" + std::to_string(i),
                [this, i](sim::Process &p) { senderBody(p, i); }));
            epA.push_back(
                &ua.createEndpoint(senders.back().get(), cfg));
            // Receiver endpoints have no process: messages are small,
            // land descriptor-inline, and are polled at the end.
            epB.push_back(&ub.createEndpoint(nullptr, cfg));
            ChannelId ca = invalidChannel, cb = invalidChannel;
            UNetAtm::connectDirect(
                ua, *epA.back(), ub, *epB.back(),
                static_cast<atm::Vci>(10 + i), ca, cb);
            chans.push_back(ca);
            credits[i].setLimit(cfg.sendQueueDepth);
        }
        // Both fibers wake at the same tick — that resume order is the
        // first choice point. Inside the body, lane i then delays
        // i*4 us (just over one sendv's PIO burst) so the single-CPU
        // host never sees two concurrent busy() computations; the i960
        // still needs ~20 us per train, so the second doorbellTrain
        // always lands mid-drain of the first and the firmware polls
        // race both trains' cells.
        for (auto &proc : senders)
            proc->start(sim::microseconds(10)); // same tick: the race
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        for (int i = 0; i < lanes; ++i) {
            epA[static_cast<std::size_t>(i)]->auditRings();
            epB[static_cast<std::size_t>(i)]->auditRings();
            if (epB[static_cast<std::size_t>(i)]->rxQueueDrops())
                UNET_PANIC("sendv-race: receive-queue drop in a "
                           "lossless rig");
        }
    }

    void
    checkEnd() override
    {
        for (auto &proc : senders)
            if (!proc->finished())
                UNET_PANIC("sendv-race: sender ", proc->name(),
                           " did not finish");
        for (int i = 0; i < lanes; ++i) {
            Endpoint &ep = *epB[static_cast<std::size_t>(i)];
            RecvDescriptor out[batch + 1];
            std::size_t got = ub.pollv(ep, out, batch + 1);
            if (got != batch)
                UNET_PANIC("sendv-race: lane ", i, " delivered ", got,
                           " of ", batch, " messages");
            for (std::uint32_t k = 0; k < batch; ++k) {
                if (!out[k].isSmall || out[k].length != length(i, k))
                    UNET_PANIC("sendv-race: lane ", i, " message ", k,
                               " has length ", out[k].length,
                               ", expected ", length(i, k),
                               " (misrouted or reordered)");
                if (out[k].inlineData[0] != k)
                    UNET_PANIC("sendv-race: lane ", i, " position ", k,
                               " carries sequence ",
                               unsigned(out[k].inlineData[0]));
                credits[i].release();
            }
            if (credits[i].held() != 0)
                UNET_PANIC("sendv-race: lane ", i, " ends with ",
                           credits[i].held(), " credits in flight");
        }
    }

    void
    mixState(obs::Digest &d) const override
    {
        for (int i = 0; i < lanes; ++i) {
            d.mix(static_cast<std::uint64_t>(
                senders[static_cast<std::size_t>(i)]->finished()));
            d.mix(credits[i].stateHash());
            mixEndpoint(d, *epA[static_cast<std::size_t>(i)]);
            mixEndpoint(d, *epB[static_cast<std::size_t>(i)]);
        }
        d.mix(nicA.messagesSent());
        d.mix(nicB.messagesDelivered());
    }

  private:
    void
    senderBody(sim::Process &self, int i)
    {
        if (i)
            self.delay(sim::microseconds(4) *
                       static_cast<sim::Tick>(i));
        SendDescriptor descs[batch];
        for (std::uint32_t k = 0; k < batch; ++k) {
            descs[k].channel = chans[static_cast<std::size_t>(i)];
            descs[k].isInline = true;
            descs[k].inlineLength =
                static_cast<std::uint8_t>(length(i, k));
            descs[k].inlineData[0] = static_cast<std::uint8_t>(k);
        }
        // Credits cover the posted window; the checkEnd poll returns
        // them, so a lost or duplicated message leaves a nonzero
        // balance.
        for (std::uint32_t k = 0; k < batch; ++k)
            credits[i].acquire();
        std::size_t accepted =
            ua.sendv(self, *epA[static_cast<std::size_t>(i)], descs,
                     batch);
        if (accepted != batch)
            UNET_PANIC("sendv-race: lane ", i, " sendv accepted ",
                       accepted, " of ", batch);
    }

    sim::Simulation s;
    atm::AtmLink link;
    host::Host hostA, hostB;
    nic::Pca200 nicA, nicB;
    UNetAtm ua, ub;
    std::vector<std::unique_ptr<sim::Process>> senders;
    std::vector<Endpoint *> epA, epB;
    std::vector<ChannelId> chans;
    CreditWindow credits[lanes];
};

// -------------------------------------------------------- atm-cmdqueue

/**
 * The host-driver command queue racing the firmware's polling loop.
 * Two fibers on one ATM host, each owning its own endpoint on the SAME
 * PCA-200, wake at one tick and post scalar sends — each send followed
 * by an explicit flush, i.e. one doorbell command per descriptor on
 * the adapter's command queue. The i960 runs one weighted tx-poll
 * event per endpoint; those polls race each other, the doorbells, and
 * the second fiber's posts landing mid-drain. Oracles: per-lane
 * exactly-once, in-order delivery at host B; ring audits and a
 * no-drop invariant each step.
 */
class AtmCmdQueueInstance : public ConfigInstance
{
  public:
    static constexpr int lanes = 2;
    static constexpr std::uint32_t messages = 2;

    static std::uint32_t
    length(int lane, std::uint32_t k)
    {
        // Single-cell (<= 40 bytes), descriptor-inline on receive;
        // distinct per-lane, per-position lengths expose misrouting
        // and reordering.
        return 20 + 8 * static_cast<std::uint32_t>(lane) + k;
    }

    AtmCmdQueueInstance()
        : link(s, atm::LinkSpec::oc3()),
          hostA(s, "a", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          hostB(s, "b", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          nicA(hostA, link), nicB(hostB, link), ua(hostA, nicA),
          ub(hostB, nicB)
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 16 * 1024;
        for (int i = 0; i < lanes; ++i) {
            senders.push_back(std::make_unique<sim::Process>(
                s, "cmd" + std::to_string(i),
                [this, i](sim::Process &p) { senderBody(p, i); }));
            epA.push_back(
                &ua.createEndpoint(senders.back().get(), cfg));
            // Receiver endpoints have no process: single-cell messages
            // land descriptor-inline and are polled at the end.
            epB.push_back(&ub.createEndpoint(nullptr, cfg));
            ChannelId ca = invalidChannel, cb = invalidChannel;
            UNetAtm::connectDirect(
                ua, *epA.back(), ub, *epB.back(),
                static_cast<atm::Vci>(20 + i), ca, cb);
            chans.push_back(ca);
        }
        // Same tick: the wakeup order is the first choice point. Lane 1
        // then delays past lane 0's PIO burst (one CPU), but well
        // inside the i960's multi-microsecond drain of lane 0's
        // commands, so its doorbells land mid-poll.
        for (auto &proc : senders)
            proc->start(sim::microseconds(10));
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        for (int i = 0; i < lanes; ++i) {
            epA[static_cast<std::size_t>(i)]->auditRings();
            epB[static_cast<std::size_t>(i)]->auditRings();
            if (epB[static_cast<std::size_t>(i)]->rxQueueDrops())
                UNET_PANIC("atm-cmdqueue: receive-queue drop in a "
                           "lossless rig");
        }
    }

    void
    checkEnd() override
    {
        for (auto &proc : senders)
            if (!proc->finished())
                UNET_PANIC("atm-cmdqueue: sender ", proc->name(),
                           " did not finish");
        for (int i = 0; i < lanes; ++i) {
            Endpoint &ep = *epB[static_cast<std::size_t>(i)];
            RecvDescriptor out[messages + 1];
            std::size_t got = ub.pollv(ep, out, messages + 1);
            if (got != messages)
                UNET_PANIC("atm-cmdqueue: lane ", i, " delivered ",
                           got, " of ", messages, " messages");
            for (std::uint32_t k = 0; k < messages; ++k) {
                if (!out[k].isSmall || out[k].length != length(i, k))
                    UNET_PANIC("atm-cmdqueue: lane ", i, " message ",
                               k, " has length ", out[k].length,
                               ", expected ", length(i, k),
                               " (misrouted or reordered)");
                if (out[k].inlineData[0] != k)
                    UNET_PANIC("atm-cmdqueue: lane ", i, " position ",
                               k, " carries sequence ",
                               unsigned(out[k].inlineData[0]));
            }
        }
    }

    void
    mixState(obs::Digest &d) const override
    {
        for (int i = 0; i < lanes; ++i) {
            d.mix(static_cast<std::uint64_t>(
                senders[static_cast<std::size_t>(i)]->finished()));
            mixEndpoint(d, *epA[static_cast<std::size_t>(i)]);
            mixEndpoint(d, *epB[static_cast<std::size_t>(i)]);
        }
        d.mix(nicA.messagesSent());
        d.mix(nicB.messagesDelivered());
    }

  private:
    void
    senderBody(sim::Process &self, int i)
    {
        // Past lane 0's whole PIO burst (~7.5 us per posted command on
        // one CPU), inside the i960's ~10 us-per-message drain of lane
        // 0's commands: the doorbells land mid-poll.
        if (i)
            self.delay(sim::microseconds(16) *
                       static_cast<sim::Tick>(i));
        for (std::uint32_t k = 0; k < messages; ++k) {
            SendDescriptor sd;
            sd.channel = chans[static_cast<std::size_t>(i)];
            sd.isInline = true;
            sd.inlineLength =
                static_cast<std::uint8_t>(length(i, k));
            sd.inlineData[0] = static_cast<std::uint8_t>(k);
            if (!ua.send(self, *epA[static_cast<std::size_t>(i)], sd))
                UNET_PANIC("atm-cmdqueue: lane ", i, " send ", k,
                           " refused");
            // One doorbell command per descriptor: the command-queue
            // traffic the firmware polls race against.
            ua.flush(self, *epA[static_cast<std::size_t>(i)]);
        }
    }

    sim::Simulation s;
    atm::AtmLink link;
    host::Host hostA, hostB;
    nic::Pca200 nicA, nicB;
    UNetAtm ua, ub;
    std::vector<std::unique_ptr<sim::Process>> senders;
    std::vector<Endpoint *> epA, epB;
    std::vector<ChannelId> chans;
};

// -------------------------------------------------------------- upcall

/**
 * The signal-handler receive model under racing arrivals. Two sender
 * nodes wake at one tick and each posts two small messages through a
 * switch into ONE receiving endpoint that uses setUpcall() — every
 * activation pays the signal-delivery latency once, then consumes all
 * pending messages. The explorer permutes which sender's frames reach
 * the demux first and how arrivals batch into activations; whatever
 * the interleaving, each lane's messages must arrive exactly once and
 * in per-lane order.
 */
class UpcallInstance : public ConfigInstance
{
  public:
    static constexpr int lanes = 2;
    static constexpr std::uint32_t messages = 2;

    static std::uint32_t
    length(int lane, std::uint32_t k)
    {
        return 40 + 8 * static_cast<std::uint32_t>(lane) + k;
    }

    UpcallInstance() : sw(s), b(s, sw, lanes)
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 16 * 1024;
        // The receiving endpoint has no process: the upcall IS the
        // receive discipline.
        epB = &b.unet.createEndpoint(nullptr, cfg);
        epB->setUpcall(
            [this](const RecvDescriptor &rd) {
                ++handlerRuns;
                seen.push_back(rd.length);
            },
            sim::microseconds(5));
        for (int i = 0; i < lanes; ++i) {
            nodes.push_back(std::make_unique<FeNodeRig>(s, sw, i));
            senders.push_back(std::make_unique<sim::Process>(
                s, "send" + std::to_string(i),
                [this, i](sim::Process &p) { senderBody(p, i); }));
            epA.push_back(&nodes[static_cast<std::size_t>(i)]
                               ->unet.createEndpoint(
                                   senders.back().get(), cfg));
            ChannelId ca = invalidChannel, cb = invalidChannel;
            UNetFe::connect(nodes[static_cast<std::size_t>(i)]->unet,
                            *epA.back(), b.unet, *epB, ca, cb);
            chans.push_back(ca);
        }
        for (auto &proc : senders)
            proc->start(sim::microseconds(10)); // same tick: the race
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        epB->auditRings();
        for (auto *ep : epA)
            ep->auditRings();
        if (epB->rxQueueDrops())
            UNET_PANIC("upcall: receive-queue drop in a lossless rig");
    }

    void
    checkEnd() override
    {
        for (auto &proc : senders)
            if (!proc->finished())
                UNET_PANIC("upcall: sender ", proc->name(),
                           " did not finish");
        if (seen.size() != lanes * messages)
            UNET_PANIC("upcall: exactly-once violated: handler saw ",
                       seen.size(), " of ", lanes * messages,
                       " messages");
        // Per-lane in-order: decode (lane, k) from the length and
        // require each lane's sequence to be 0,1,... in seen order.
        std::uint32_t nextInLane[lanes] = {};
        for (std::uint32_t len : seen) {
            std::uint32_t lane = (len - 40) / 8;
            std::uint32_t k = (len - 40) % 8;
            if (lane >= lanes || k >= messages)
                UNET_PANIC("upcall: impossible length ", len);
            if (k != nextInLane[lane])
                UNET_PANIC("upcall: lane ", lane,
                           " out of order: got sequence ", k,
                           ", expected ", nextInLane[lane]);
            ++nextInLane[lane];
        }
    }

    void
    mixState(obs::Digest &d) const override
    {
        d.mix(static_cast<std::uint64_t>(seen.size()));
        for (std::uint32_t v : seen)
            d.mix(static_cast<std::uint64_t>(v));
        d.mix(handlerRuns);
        for (auto &proc : senders)
            d.mix(static_cast<std::uint64_t>(proc->finished()));
        for (auto *ep : epA)
            mixEndpoint(d, *ep);
        mixEndpoint(d, *epB);
    }

  private:
    void
    senderBody(sim::Process &self, int i)
    {
        UNetFe &un = nodes[static_cast<std::size_t>(i)]->unet;
        Endpoint &ep = *epA[static_cast<std::size_t>(i)];
        for (std::uint32_t k = 0; k < messages; ++k) {
            // Distinct gather regions: the first frame's buffer stays
            // agent-owned until it leaves the NIC.
            if (!sendFragment(un, self, ep,
                              chans[static_cast<std::size_t>(i)],
                              k * 4096, length(i, k)))
                UNET_PANIC("upcall: sender ", i, " send ", k,
                           " refused");
            un.flush(self, ep);
        }
    }

    sim::Simulation s;
    eth::Switch sw;
    FeNodeRig b;
    std::vector<std::unique_ptr<FeNodeRig>> nodes;
    std::vector<std::unique_ptr<sim::Process>> senders;
    std::vector<Endpoint *> epA;
    Endpoint *epB = nullptr;
    std::vector<ChannelId> chans;
    std::vector<std::uint32_t> seen;
    std::uint64_t handlerRuns = 0;
};

// ------------------------------------------------------------ ep-evict

/**
 * Endpoint-residency churn under concurrent traffic. The receiving
 * node's hot set holds 2 of its 3 endpoints, so endpoint 0 starts
 * paged out (creation order warms 0, 1, 2 and the third warm evicts
 * the LRU). From one tick: three remote senders fire into endpoints
 * 0/1/2 — the receive demux faults endpoint 0 back in and evicts a
 * neighbour, racing the other arrivals — while a local fiber sends
 * *from* endpoint 0, whose trap-side drain races the same page-in and
 * holds a pin across the device TX ring. Whatever the interleaving:
 * exactly-once per-lane delivery, the hot set never exceeds capacity,
 * a pinned endpoint is never evicted (the cache panics if the LRU
 * scan is wrong), at least one fault is charged (endpoint 0 cannot
 * start resident), and every pin is released by quiescence.
 */
class EpEvictInstance : public ConfigInstance
{
  public:
    static constexpr int lanes = 3;
    static constexpr std::size_t hotCapacity = 2;

    static std::uint32_t
    length(int lane)
    {
        return 40 + static_cast<std::uint32_t>(lane);
    }

    static constexpr std::uint32_t beeLength = 52;

    EpEvictInstance()
        : sw(s), b(s, sw, lanes, receiverSpec()), c(s, sw, lanes + 1),
          bee(s, "bee", [this](sim::Process &p) { beeBody(p); })
    {
        EndpointConfig cfg;
        cfg.sendQueueDepth = 8;
        cfg.recvQueueDepth = 8;
        cfg.freeQueueDepth = 8;
        cfg.bufferAreaBytes = 16 * 1024;
        // Endpoint 0 first: the two later warms evict it, so it is
        // the guaranteed-cold endpoint both race arms contend over.
        for (int i = 0; i < lanes; ++i)
            epB.push_back(&b.unet.createEndpoint(
                i == 0 ? &bee : nullptr, cfg));
        epC = &c.unet.createEndpoint(nullptr, cfg);
        UNetFe::connect(b.unet, *epB[0], c.unet, *epC, chanBee,
                        chanAtC);
        for (int i = 0; i < lanes; ++i) {
            nodes.push_back(std::make_unique<FeNodeRig>(s, sw, i));
            senders.push_back(std::make_unique<sim::Process>(
                s, "send" + std::to_string(i),
                [this, i](sim::Process &p) { senderBody(p, i); }));
            epA.push_back(&nodes[static_cast<std::size_t>(i)]
                               ->unet.createEndpoint(
                                   senders.back().get(), cfg));
            ChannelId ca = invalidChannel, cb = invalidChannel;
            UNetFe::connect(nodes[static_cast<std::size_t>(i)]->unet,
                            *epA.back(),
                            b.unet, *epB[static_cast<std::size_t>(i)],
                            ca, cb);
            chans.push_back(ca);
        }
        for (auto &proc : senders)
            proc->start(sim::microseconds(10)); // same tick: the race
        bee.start(sim::microseconds(10));
    }

    sim::Simulation &simulation() override { return s; }

    void
    checkStep() override
    {
        for (int i = 0; i < lanes; ++i) {
            epA[static_cast<std::size_t>(i)]->auditRings();
            epB[static_cast<std::size_t>(i)]->auditRings();
            if (epB[static_cast<std::size_t>(i)]->rxQueueDrops())
                UNET_PANIC("ep-evict: receive-queue drop in a "
                           "lossless rig");
        }
        epC->auditRings();
        const vep::ResidencyCache &cache = b.unet.residency();
        if (cache.residentCount() > hotCapacity)
            UNET_PANIC("ep-evict: ", cache.residentCount(),
                       " endpoints resident in a ", hotCapacity,
                       "-slot hot set");
    }

    void
    checkEnd() override
    {
        for (auto &proc : senders)
            if (!proc->finished())
                UNET_PANIC("ep-evict: sender ", proc->name(),
                           " did not finish");
        if (!bee.finished())
            UNET_PANIC("ep-evict: bee did not finish");
        for (int i = 0; i < lanes; ++i) {
            Endpoint &ep = *epB[static_cast<std::size_t>(i)];
            RecvDescriptor rd;
            if (!ep.poll(rd))
                UNET_PANIC("ep-evict: endpoint ", i,
                           " received nothing");
            if (!rd.isSmall || rd.length != length(i))
                UNET_PANIC("ep-evict: endpoint ", i, " got a ",
                           rd.length, "-byte message, expected ",
                           length(i), " (misrouted demux)");
            if (ep.poll(rd))
                UNET_PANIC("ep-evict: endpoint ", i,
                           " received more than one message");
        }
        RecvDescriptor rd;
        if (!epC->poll(rd) || rd.length != beeLength)
            UNET_PANIC("ep-evict: bee's message never reached node c");
        if (epC->poll(rd))
            UNET_PANIC("ep-evict: node c received a duplicate");
        const vep::ResidencyCache &cache = b.unet.residency();
        if (cache.faults() == 0)
            UNET_PANIC("ep-evict: no residency fault charged, but "
                       "endpoint 0 started paged out");
        if (cache.pinnedCount() != 0)
            UNET_PANIC("ep-evict: ", cache.pinnedCount(),
                       " pins still held at quiescence");
    }

    void
    mixState(obs::Digest &d) const override
    {
        for (int i = 0; i < lanes; ++i) {
            d.mix(static_cast<std::uint64_t>(
                senders[static_cast<std::size_t>(i)]->finished()));
            mixEndpoint(d, *epA[static_cast<std::size_t>(i)]);
            mixEndpoint(d, *epB[static_cast<std::size_t>(i)]);
        }
        d.mix(static_cast<std::uint64_t>(bee.finished()));
        mixEndpoint(d, *epC);
        const vep::ResidencyCache &cache = b.unet.residency();
        d.mix(cache.stateHash());
        d.mix(cache.faults());
        d.mix(cache.evictions());
        d.mix(cache.hits());
        d.mix(static_cast<std::uint64_t>(cache.residentCount()));
        d.mix(static_cast<std::uint64_t>(cache.pinnedCount()));
    }

  private:
    static UNetFeSpec
    receiverSpec()
    {
        UNetFeSpec spec;
        spec.vep.hotCapacity = hotCapacity;
        return spec;
    }

    void
    beeBody(sim::Process &self)
    {
        if (!sendFragment(b.unet, self, *epB[0], chanBee, 0,
                          beeLength))
            UNET_PANIC("ep-evict: bee send refused");
        b.unet.flush(self, *epB[0]);
    }

    void
    senderBody(sim::Process &self, int i)
    {
        UNetFe &un = nodes[static_cast<std::size_t>(i)]->unet;
        Endpoint &ep = *epA[static_cast<std::size_t>(i)];
        if (!sendFragment(un, self, ep,
                          chans[static_cast<std::size_t>(i)], 0,
                          length(i)))
            UNET_PANIC("ep-evict: sender ", i, " refused");
        un.flush(self, ep);
    }

    sim::Simulation s;
    eth::Switch sw;
    FeNodeRig b, c;
    sim::Process bee;
    std::vector<std::unique_ptr<FeNodeRig>> nodes;
    std::vector<std::unique_ptr<sim::Process>> senders;
    std::vector<Endpoint *> epA, epB;
    Endpoint *epC = nullptr;
    std::vector<ChannelId> chans;
    ChannelId chanBee = invalidChannel, chanAtC = invalidChannel;
};

// ------------------------------------------------------------ registry

template <typename Instance>
class SimpleConfig : public Config
{
  public:
    SimpleConfig(const char *name, const char *description)
        : _name(name), _description(description)
    {}

    const char *name() const override { return _name; }
    const char *description() const override { return _description; }

    std::unique_ptr<ConfigInstance>
    make() const override
    {
        return std::make_unique<Instance>();
    }

  private:
    const char *_name;
    const char *_description;
};

const SimpleConfig<Fig5Instance> fig5Config{
    "fig5",
    "two-node FE ping-pong (Figure 5 rig), two rounds, in-order + "
    "exactly-once oracles"};

const SimpleConfig<RetransmitInstance> retransmitConfig{
    "retransmit",
    "burst loss inside an AM window; Go-Back-N recovery to "
    "exactly-once delivery with credits conserved"};

const SimpleConfig<DemuxInstance> demuxConfig{
    "demux",
    "three same-tick senders into three endpoints of one node; the "
    "receive-demux race"};

const SimpleConfig<SeededBugInstance> seededConfig{
    "seeded-credit-bug",
    "planted credit double-return on one of 720 same-tick orderings; "
    "the regression salts miss"};

const SimpleConfig<SendvRaceInstance> sendvRaceConfig{
    "sendv-race",
    "three overlapping sendv descriptor trains on one ATM adapter "
    "racing the firmware tx polls; exactly-once + credit oracles"};

const SimpleConfig<AtmCmdQueueInstance> atmCmdQueueConfig{
    "atm-cmdqueue",
    "scalar doorbell commands from two fibers on one ATM adapter "
    "racing the i960 command-queue polls; exactly-once + in-order "
    "oracles"};

const SimpleConfig<UpcallInstance> upcallConfig{
    "upcall",
    "two senders race into one endpoint in the upcall receive model; "
    "per-lane exactly-once + in-order oracles over activation "
    "batching"};

const SimpleConfig<EpEvictInstance> epEvictConfig{
    "ep-evict",
    "receive demux races LRU eviction of a 2-slot endpoint hot set "
    "while a local send races its own page-in; exactly-once + "
    "capacity + pin-safety oracles"};

} // namespace

const std::vector<const Config *> &
configs()
{
    static const std::vector<const Config *> all = {
        &fig5Config, &retransmitConfig, &demuxConfig, &seededConfig,
        &sendvRaceConfig, &atmCmdQueueConfig, &upcallConfig,
        &epEvictConfig};
    return all;
}

const Config *
findConfig(std::string_view name)
{
    for (const Config *config : configs())
        if (name == config->name())
            return config;
    return nullptr;
}

} // namespace unet::check::explore
