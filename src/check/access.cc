#include "check/access.hh"

#if defined(UNET_CHECK) && UNET_CHECK

#include "check/hb/auditor.hh"
#include "sim/logging.hh"
#include "sim/process.hh"

namespace unet::check {

namespace {

/** The current execution context: the running process, or nullptr for
 *  the main/event context. */
const sim::Process *
context()
{
    return sim::Process::current();
}

const std::string &
contextName()
{
    static const std::string main_ctx = "<main/event context>";
    const sim::Process *p = context();
    return p ? p->name() : main_ctx;
}

} // namespace

ContextGuard::~ContextGuard()
{
    hb::noteGuardDestroyed(*this);
}

void
ContextGuard::mutate(const char *op, std::source_location site) const
{
    hb::noteGuardAccess(*this, op, /*write=*/true, site);
    const sim::Process *p = context();
    if (p == nullptr)
        return; // agents/harnesses in the main context hold custody
    if (_owner == nullptr || p == _owner)
        return;
    panicForeign(op);
}

void
ContextGuard::observe(const char *op, std::source_location site) const
{
    hb::noteGuardAccess(*this, op, /*write=*/false, site);
}

void
ContextGuard::panicForeign(const char *op) const
{
    UNET_PANIC("cross-fiber access: ", op, " on ", what,
               " owned by process '",
               _owner ? _owner->name() : "<none>",
               "' from foreign fiber '", contextName(), "'");
}

void
ContextGuard::panicInterleaved(const char *op) const
{
    UNET_PANIC("interleaved access to ", what, ": ", op, " from '",
               contextName(), "' while '",
               holderOp ? holderOp : "<op>",
               "' is still in progress from another context — a "
               "mutation sequence yielded mid-update");
}

ContextGuard::Scope::Scope(ContextGuard &guard, const char *op,
                           std::source_location site)
    : guard(guard)
{
    guard.mutate(op, site);
    const void *ctx = context();
    if (guard.depth > 0 && guard.holder != ctx)
        guard.panicInterleaved(op);
    guard.holder = ctx;
    guard.holderOp = op;
    ++guard.depth;
}

ContextGuard::Scope::~Scope()
{
    if (--guard.depth == 0) {
        guard.holder = nullptr;
        guard.holderOp = nullptr;
    }
}

void
assertCaller(const sim::Process &claimed, const char *op)
{
    const sim::Process *p = sim::Process::current();
    if (p == nullptr || p == &claimed)
        return;
    UNET_PANIC("caller impersonation: ", op, " claims process '",
               claimed.name(), "' but runs on fiber of '", p->name(),
               "'");
}

} // namespace unet::check

#endif // UNET_CHECK
