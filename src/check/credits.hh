/**
 * @file
 * Flow-control credit auditing.
 *
 * The Active Message layer promises each channel at most `window`
 * unacknowledged messages in flight; the receiver sizes its buffers to
 * that promise. A credit that goes negative (double release on an ACK)
 * or exceeds the window (a send that skipped the flow-control gate)
 * breaks the no-drop guarantee silently — traffic still flows, just
 * unreliably under load. This auditor panics at the exact violation.
 *
 * Header-only; compiles to a no-op when UNET_CHECK is 0.
 */

#ifndef UNET_CHECK_CREDITS_HH
#define UNET_CHECK_CREDITS_HH

#include <cstddef>

#include "check/enroll.hh"
#include "sim/logging.hh"
#include "sim/perturb.hh"

namespace unet::check {

#if defined(UNET_CHECK) && UNET_CHECK

/**
 * Audits one channel's in-flight message credits.
 *
 * Enrolled in the global registry (check/enroll.hh) so the explorer's
 * invariant oracle can assert conservation across every window in the
 * simulation after each step; enrollment makes instances non-copyable,
 * which is fine — they live inside node-stable channel state.
 */
class CreditWindow : public Enrolled<CreditWindow>
{
  public:
    /** Set the window limit (once, before the first acquire). */
    void
    setLimit(std::size_t window)
    {
        if (limit != 0 && limit != window)
            UNET_PANIC("credit window re-limited from ", limit, " to ",
                       window);
        limit = window;
    }

    /** One more message in flight. */
    void
    acquire()
    {
        if (limit == 0)
            UNET_PANIC("credit acquired before the window was sized");
        if (inFlight >= limit)
            UNET_PANIC("credit overflow: ", inFlight,
                       " messages already in flight of a ", limit,
                       "-message window");
        ++inFlight;
    }

    /** One in-flight message acknowledged. */
    void
    release()
    {
        if (inFlight == 0)
            UNET_PANIC("credit underflow: release with no message in "
                       "flight");
        --inFlight;
    }

    std::size_t held() const { return inFlight; }

    /** The window size, or 0 while unsized. */
    std::size_t windowLimit() const { return limit; }

    /** Digest of (limit, held) for explorer state hashing; instances
     *  are combined commutatively, so per-instance hashes suffice. */
    std::uint64_t
    stateHash() const
    {
        return sim::perturb::mix(limit + 1, inFlight);
    }

  private:
    std::size_t limit = 0;
    std::size_t inFlight = 0;
};

#else // !UNET_CHECK

/** No-op stand-in. */
class CreditWindow : public Enrolled<CreditWindow>
{
  public:
    void setLimit(std::size_t) {}
    void acquire() {}
    void release() {}
    std::size_t held() const { return 0; }
    std::size_t windowLimit() const { return 0; }
    std::uint64_t stateHash() const { return 0; }
};

#endif // UNET_CHECK

} // namespace unet::check

#endif // UNET_CHECK_CREDITS_HH
