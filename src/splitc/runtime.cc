#include "splitc/runtime.hh"

#include "sim/logging.hh"

namespace unet::splitc {

using am::Args;
using am::Token;
using am::Word;

Runtime::Runtime(UNet &unet, Endpoint &ep, int self, int nprocs,
                 std::size_t heap_bytes, am::AmSpec am_spec)
    : unet(unet), ep(ep), _self(self), _procs(nprocs),
      _am(unet, ep, am_spec), heap(heap_bytes, 0),
      channels(static_cast<std::size_t>(nprocs), invalidChannel)
{
    stateGuard.setLabel(unet.host().name() + ".splitc.state");

    // Bulk-store payloads land directly in the heap.
    _am.setBulkSink([this](std::uint32_t addr,
                           std::span<const std::uint8_t> data) {
        std::uint8_t *dst = heapAt(addr, data.size());
        std::memcpy(dst, data.data(), data.size());
    });

    // Reserved handlers.
    hGetReq = registerHandler([this](sim::Process &proc, Token tok,
                                     const Args &args,
                                     std::span<const std::uint8_t>) {
        // {remote_addr, len, requester_local_addr, requester}: ship the
        // bytes back as a store completing with hGetDone.
        const std::uint8_t *src = heapAt(args[0], args[1]);
        if (!_am.store(proc, tok.channel, args[2], {src, args[1]},
                       hGetDone))
            UNET_FATAL("node ", _self, ": get-reply channel died");
    });
    hGetDone = registerHandler([this](sim::Process &, Token,
                                      const Args &,
                                      std::span<const std::uint8_t>) {
        stateGuard.mutate("get-done handler");
        ++getsDone;
    });
    hBarrier = registerHandler([this](sim::Process &, Token,
                                      const Args &args,
                                      std::span<const std::uint8_t>) {
        stateGuard.mutate("barrier handler");
        ++barrierSeen[{args[0], args[1]}];
    });
}

void
Runtime::setChannel(int peer, ChannelId chan)
{
    channels.at(static_cast<std::size_t>(peer)) = chan;
    _am.openChannel(chan);
}

ChannelId
Runtime::channelTo(int peer) const
{
    ChannelId chan = channels.at(static_cast<std::size_t>(peer));
    if (chan == invalidChannel)
        UNET_PANIC("node ", _self, " has no channel to node ", peer);
    return chan;
}

HeapAddr
Runtime::allocBytes(std::size_t bytes, std::size_t align)
{
    stateGuard.mutate("heap alloc");
    std::size_t off = (heapBrk + align - 1) & ~(align - 1);
    if (off + bytes > heap.size())
        UNET_FATAL("Split-C heap exhausted on node ", _self, ": need ",
                   bytes, " bytes, ", heap.size() - heapBrk, " remain");
    heapBrk = off + bytes;
    return static_cast<HeapAddr>(off);
}

std::uint8_t *
Runtime::heapAt(HeapAddr addr, std::size_t len)
{
    stateGuard.mutate("heap access");
    if (addr + len > heap.size())
        UNET_PANIC("heap access [", addr, "+", len, ") beyond ",
                   heap.size(), " on node ", _self);
    return heap.data() + addr;
}

HeapAddr
Runtime::scratchFor(const std::string &key, std::size_t bytes)
{
    stateGuard.mutate("scratch lookup");
    auto it = scratch.find(key);
    if (it != scratch.end())
        return it->second;
    HeapAddr addr = allocBytes(bytes, 8);
    scratch.emplace(key, addr);
    return addr;
}

void
Runtime::readBytes(sim::Process &proc, int node, HeapAddr addr,
                   std::span<std::uint8_t> out)
{
    check::assertCaller(proc, "splitc read");
    if (node == _self) {
        std::memcpy(out.data(), heapAt(addr, out.size()), out.size());
        chargeTime(proc, unet.host().cpu().spec().memcpyTime(out.size()));
        return;
    }
    CommTimer t(*this);
    // Stage through a local bounce buffer in the heap (remote stores
    // can only target heap addresses), then copy out.
    HeapAddr stage = scratchFor("read-stage", readStageBytes);
    std::size_t off = 0;
    while (off < out.size()) {
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::size_t>(readStageBytes, out.size() - off));
        get(proc, node, addr + static_cast<HeapAddr>(off), stage, chunk);
        _am.pollUntil(proc, [this] { return getsDone == getsIssued; });
        std::memcpy(out.data() + off, heapAt(stage, chunk), chunk);
        off += chunk;
    }
    chargeTime(proc, unet.host().cpu().spec().memcpyTime(out.size()));
}

void
Runtime::writeBytes(sim::Process &proc, int node, HeapAddr addr,
                    std::span<const std::uint8_t> data)
{
    check::assertCaller(proc, "splitc write");
    if (node == _self) {
        std::memcpy(heapAt(addr, data.size()), data.data(), data.size());
        chargeTime(proc,
                   unet.host().cpu().spec().memcpyTime(data.size()));
        return;
    }
    CommTimer t(*this);
    // ACKed delivery doubles as remote completion: the receiving AM
    // layer writes the sink before acknowledging.
    if (!_am.store(proc, channelTo(node), addr, data))
        UNET_FATAL("node ", _self, ": channel to node ", node,
                   " died during write");
    _am.drain(proc);
}

void
Runtime::get(sim::Process &proc, int node, HeapAddr remote_addr,
             HeapAddr local_addr, std::uint32_t len)
{
    if (node == _self) {
        std::memcpy(heapAt(local_addr, len), heapAt(remote_addr, len),
                    len);
        chargeTime(proc, unet.host().cpu().spec().memcpyTime(len));
        return;
    }
    CommTimer t(*this);
    stateGuard.mutate("get issue");
    ++getsIssued;
    if (!_am.request(proc, channelTo(node), hGetReq,
                     {remote_addr, len, local_addr,
                      static_cast<Word>(_self)}))
        UNET_FATAL("node ", _self, ": channel to node ", node,
                   " died during get");
}

void
Runtime::put(sim::Process &proc, int node, HeapAddr remote_addr,
             std::span<const std::uint8_t> data)
{
    if (node == _self) {
        std::memcpy(heapAt(remote_addr, data.size()), data.data(),
                    data.size());
        chargeTime(proc,
                   unet.host().cpu().spec().memcpyTime(data.size()));
        return;
    }
    CommTimer t(*this);
    if (!_am.store(proc, channelTo(node), remote_addr, data))
        UNET_FATAL("node ", _self, ": channel to node ", node,
                   " died during put");
}

void
Runtime::sync(sim::Process &proc)
{
    CommTimer t(*this);
    _am.pollUntil(proc, [this] { return getsDone == getsIssued; });
    _am.drain(proc);
}

void
Runtime::storeTo(sim::Process &proc, int node, HeapAddr remote_addr,
                 std::span<const std::uint8_t> data)
{
    put(proc, node, remote_addr, data);
}

void
Runtime::allStoreSync(sim::Process &proc)
{
    CommTimer t(*this);
    // ACK receipt implies the receiver's AM layer has written the
    // payload to its sink, so drain + barrier gives global completion.
    _am.drain(proc);
    barrier(proc);
}

void
Runtime::barrier(sim::Process &proc)
{
    if (_procs == 1)
        return;
    check::assertCaller(proc, "splitc barrier");
    CommTimer t(*this);
    stateGuard.mutate("barrier epoch");
    std::uint64_t epoch = ++barrierEpoch;

    // Dissemination barrier: log2(n) rounds.
    for (std::uint32_t round = 0; (1u << round) < static_cast<std::uint32_t>(_procs);
         ++round) {
        int to = (_self + (1 << round)) % _procs;
        if (!_am.request(proc, channelTo(to), hBarrier,
                         {static_cast<Word>(epoch), round, 0, 0}))
            UNET_FATAL("node ", _self, ": channel to node ", to,
                       " died during barrier");
        _am.pollUntil(proc, [this, epoch, round] {
            auto it = barrierSeen.find({epoch, round});
            return it != barrierSeen.end() && it->second >= 1;
        });
        barrierSeen.erase({epoch, round});
    }
}

std::uint64_t
Runtime::allReduceSum(sim::Process &proc, std::uint64_t value)
{
    if (_procs == 1)
        return value;
    CommTimer t(*this);
    HeapAddr stage = scratchFor(
        "reduce-stage", static_cast<std::size_t>(_procs) * 8);
    HeapAddr result = scratchFor("reduce-result", 8);

    writeBytes(proc, 0, stage + static_cast<HeapAddr>(_self) * 8,
               {reinterpret_cast<const std::uint8_t *>(&value), 8});
    barrier(proc);
    if (_self == 0) {
        std::uint64_t sum = 0;
        auto *vals = reinterpret_cast<std::uint64_t *>(
            heapAt(stage, static_cast<std::size_t>(_procs) * 8));
        for (int i = 0; i < _procs; ++i)
            sum += vals[i];
        chargeIntOps(proc, static_cast<std::uint64_t>(_procs));
        std::memcpy(heapAt(result, 8), &sum, 8);
        for (int peer = 1; peer < _procs; ++peer)
            writeBytes(proc, peer, result,
                       {reinterpret_cast<const std::uint8_t *>(&sum),
                        8});
    }
    barrier(proc);
    std::uint64_t out = 0;
    std::memcpy(&out, heapAt(result, 8), 8);
    return out;
}

std::uint64_t
Runtime::allReduceMax(sim::Process &proc, std::uint64_t value)
{
    if (_procs == 1)
        return value;
    CommTimer t(*this);
    HeapAddr stage = scratchFor(
        "reduce-stage", static_cast<std::size_t>(_procs) * 8);
    HeapAddr result = scratchFor("reduce-result", 8);

    writeBytes(proc, 0, stage + static_cast<HeapAddr>(_self) * 8,
               {reinterpret_cast<const std::uint8_t *>(&value), 8});
    barrier(proc);
    if (_self == 0) {
        std::uint64_t best = 0;
        auto *vals = reinterpret_cast<std::uint64_t *>(
            heapAt(stage, static_cast<std::size_t>(_procs) * 8));
        for (int i = 0; i < _procs; ++i)
            best = std::max(best, vals[i]);
        chargeIntOps(proc, static_cast<std::uint64_t>(_procs));
        std::memcpy(heapAt(result, 8), &best, 8);
        for (int peer = 1; peer < _procs; ++peer)
            writeBytes(proc, peer, result,
                       {reinterpret_cast<const std::uint8_t *>(&best),
                        8});
    }
    barrier(proc);
    std::uint64_t out = 0;
    std::memcpy(&out, heapAt(result, 8), 8);
    return out;
}

void
Runtime::allReduceSumVec(sim::Process &proc, std::uint64_t *data,
                         std::size_t count)
{
    if (_procs == 1)
        return;
    CommTimer t(*this);
    std::size_t bytes = count * 8;
    HeapAddr stage = scratchFor(
        "vecreduce-stage-" + std::to_string(count),
        static_cast<std::size_t>(_procs) * bytes);
    HeapAddr result = scratchFor(
        "vecreduce-result-" + std::to_string(count), bytes);

    writeBytes(proc, 0,
               stage + static_cast<HeapAddr>(_self * bytes),
               {reinterpret_cast<const std::uint8_t *>(data), bytes});
    barrier(proc);
    if (_self == 0) {
        auto *acc = reinterpret_cast<std::uint64_t *>(
            heapAt(result, bytes));
        std::memset(acc, 0, bytes);
        auto *vals = reinterpret_cast<std::uint64_t *>(
            heapAt(stage, static_cast<std::size_t>(_procs) * bytes));
        for (int p = 0; p < _procs; ++p)
            for (std::size_t i = 0; i < count; ++i)
                acc[i] += vals[static_cast<std::size_t>(p) * count + i];
        chargeIntOps(proc,
                     static_cast<std::uint64_t>(_procs) * count);
        for (int peer = 1; peer < _procs; ++peer)
            writeBytes(proc, peer, result,
                       {reinterpret_cast<const std::uint8_t *>(acc),
                        bytes});
    }
    barrier(proc);
    std::memcpy(data, heapAt(result, bytes), bytes);
    chargeTime(proc, unet.host().cpu().spec().memcpyTime(bytes));
}

void
Runtime::broadcastBytes(sim::Process &proc, int root, HeapAddr addr,
                        std::uint32_t len)
{
    if (_procs == 1)
        return;
    CommTimer t(*this);
    if (_self == root) {
        const std::uint8_t *src = heapAt(addr, len);
        for (int peer = 0; peer < _procs; ++peer)
            if (peer != root)
                storeTo(proc, peer, addr, {src, len});
        _am.drain(proc);
    }
    barrier(proc);
}

am::HandlerId
Runtime::registerHandler(am::ActiveMessages::Handler fn)
{
    // The constructor grabs the first few ids for the runtime's own
    // handlers; applications get the rest.
    static_assert(am::ActiveMessages::noHandler == 0xFF);
    if (nextHandler == am::ActiveMessages::noHandler)
        UNET_FATAL("handler space exhausted on node ", _self);
    am::HandlerId id = nextHandler++;
    _am.setHandler(id, std::move(fn));
    return id;
}

void
Runtime::chargeFlops(sim::Process &proc, std::uint64_t n)
{
    chargeTime(proc,
               static_cast<sim::Tick>(n) *
                   unet.host().cpu().spec().flopCost);
}

void
Runtime::chargeIntOps(sim::Process &proc, std::uint64_t n)
{
    chargeTime(proc,
               static_cast<sim::Tick>(n) *
                   unet.host().cpu().spec().intOpCost);
}

void
Runtime::chargeTime(sim::Process &proc, sim::Tick t)
{
    _profile.compute += t;
    unet.host().cpu().busy(proc, t);
}

} // namespace unet::splitc
