/**
 * @file
 * Split-C global pointers.
 *
 * "The Split-C language allows processes to transfer data through the
 * use of global pointers — a virtual address coupled with a process
 * identifier. Dereferencing a global pointer allows a process to read
 * or write data in the address space of other nodes cooperating in the
 * parallel application."
 */

#ifndef UNET_SPLITC_GLOBAL_PTR_HH
#define UNET_SPLITC_GLOBAL_PTR_HH

#include <cstdint>
#include <type_traits>

namespace unet::splitc {

/** Address within a node's Split-C heap. */
using HeapAddr = std::uint32_t;

/** A typed (node, address) pair. */
template <typename T>
struct GlobalPtr
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "global pointers move raw bytes");

    int node = -1;
    HeapAddr addr = 0;

    GlobalPtr() = default;
    GlobalPtr(int node, HeapAddr addr) : node(node), addr(addr) {}

    bool valid() const { return node >= 0; }

    /** Element arithmetic, like a C pointer. */
    GlobalPtr
    operator+(std::uint64_t elems) const
    {
        return {node,
                static_cast<HeapAddr>(addr + elems * sizeof(T))};
    }

    bool operator==(const GlobalPtr &) const = default;
};

} // namespace unet::splitc

#endif // UNET_SPLITC_GLOBAL_PTR_HH
