/**
 * @file
 * Per-node computation/communication time accounting.
 *
 * The paper's Figure 7 splits each benchmark's execution time into
 * "computation (cpu) and communication (net) intensive parts"; this is
 * the instrumentation that produces those two numbers.
 */

#ifndef UNET_SPLITC_PROFILE_HH
#define UNET_SPLITC_PROFILE_HH

#include "sim/time.hh"

namespace unet::splitc {

/** Accumulated compute vs communication time on one node. */
struct Profile
{
    /** Time charged through the charge*() calls (application work). */
    sim::Tick compute = 0;

    /** Wall time spent inside blocking communication operations. */
    sim::Tick comm = 0;

    void
    reset()
    {
        compute = 0;
        comm = 0;
    }
};

} // namespace unet::splitc

#endif // UNET_SPLITC_PROFILE_HH
