/**
 * @file
 * The Split-C runtime on one node.
 *
 * Implements the language's communication primitives over Active
 * Messages, as the paper's benchmarks used them:
 *
 *  - blocking read/write of remote memory (global-pointer dereference);
 *  - split-phase get/put completed by sync();
 *  - one-way store with global completion (all_store_sync);
 *  - barrier and small collectives (reductions, broadcast).
 *
 * Each node has a byte-addressable heap reachable from remote nodes.
 * SPMD programs allocate symmetrically — every node performs the same
 * allocations in the same order, so heap addresses agree across nodes
 * (the classic Split-C/SHMEM convention).
 *
 * Computation is charged explicitly through chargeFlops/chargeIntOps
 * using the host CPU's cost table (Pentium: fast integer; SPARC: fast
 * floating point), and the compute/communication split is recorded for
 * the Figure 7 breakdown.
 */

#ifndef UNET_SPLITC_RUNTIME_HH
#define UNET_SPLITC_RUNTIME_HH

#include <cstring>
#include <map>
#include <vector>

#include "am/active_messages.hh"
#include "check/access.hh"
#include "splitc/global_ptr.hh"
#include "splitc/profile.hh"

namespace unet::splitc {

/** One node's Split-C runtime. */
class Runtime
{
  public:
    /**
     * @param unet       This node's U-Net instance.
     * @param ep         Endpoint dedicated to the runtime.
     * @param self       This node's rank.
     * @param nprocs     Cluster size.
     * @param heap_bytes Size of the remotely addressable heap.
     * @param am_spec    Active Message tuning.
     */
    Runtime(UNet &unet, Endpoint &ep, int self, int nprocs,
            std::size_t heap_bytes = 16 * 1024 * 1024,
            am::AmSpec am_spec = {});

    int self() const { return _self; }
    int procs() const { return _procs; }
    am::ActiveMessages &am() { return _am; }
    Profile &profile() { return _profile; }
    host::Host &host() { return unet.host(); }

    /** Wire the AM channel to @p peer (cluster construction). */
    void setChannel(int peer, ChannelId chan);

    /**
     * Bind custody of the runtime's shared state (heap, split-phase
     * counters, barrier ledger, scratch table) to the node's SPMD
     * process. Mutations from any other fiber then panic — they would
     * be another node reaching into this node's memory.
     */
    void bindOwner(const sim::Process *proc)
    {
        stateGuard.bindOwner(proc);
    }

    ChannelId channelTo(int peer) const;

    /** @name Symmetric heap. @{ */

    /** Allocate raw bytes; all nodes must allocate in lockstep. */
    HeapAddr allocBytes(std::size_t bytes, std::size_t align = 8);

    /** Allocate an array of T. */
    template <typename T>
    HeapAddr
    alloc(std::size_t count)
    {
        return allocBytes(count * sizeof(T), alignof(T));
    }

    /** Raw pointer into the local heap. */
    std::uint8_t *heapPtr(HeapAddr addr) { return heapAt(addr, 0); }

    /** Typed pointer into the local heap. */
    template <typename T>
    T *
    localPtr(HeapAddr addr)
    {
        return reinterpret_cast<T *>(heapAt(addr, 0));
    }

    /** @} */

    /** @name Blocking remote access (global-pointer dereference). @{ */

    void readBytes(sim::Process &proc, int node, HeapAddr addr,
                   std::span<std::uint8_t> out);
    void writeBytes(sim::Process &proc, int node, HeapAddr addr,
                    std::span<const std::uint8_t> data);

    template <typename T>
    T
    read(sim::Process &proc, GlobalPtr<T> ptr)
    {
        T value{};
        readBytes(proc, ptr.node, ptr.addr,
                  {reinterpret_cast<std::uint8_t *>(&value), sizeof(T)});
        return value;
    }

    template <typename T>
    void
    write(sim::Process &proc, GlobalPtr<T> ptr, const T &value)
    {
        writeBytes(proc, ptr.node, ptr.addr,
                   {reinterpret_cast<const std::uint8_t *>(&value),
                    sizeof(T)});
    }

    /** @} */

    /** @name Split-phase operations. @{ */

    /** Start fetching remote bytes into the local heap. */
    void get(sim::Process &proc, int node, HeapAddr remote_addr,
             HeapAddr local_addr, std::uint32_t len);

    /** Start pushing bytes to a remote heap (completion via sync). */
    void put(sim::Process &proc, int node, HeapAddr remote_addr,
             std::span<const std::uint8_t> data);

    /** Wait for all outstanding gets and puts of this node. */
    void sync(sim::Process &proc);

    /** @} */

    /** @name One-way stores with global completion. @{ */

    /** Fire-and-forget bulk store into a remote heap. */
    void storeTo(sim::Process &proc, int node, HeapAddr remote_addr,
                 std::span<const std::uint8_t> data);

    /** Global all_store_sync: all stores everywhere have landed. */
    void allStoreSync(sim::Process &proc);

    /** @} */

    /** @name Collectives. @{ */

    void barrier(sim::Process &proc);
    std::uint64_t allReduceSum(sim::Process &proc, std::uint64_t value);
    std::uint64_t allReduceMax(sim::Process &proc, std::uint64_t value);

    /** Element-wise sum of a uint64 vector across all nodes; every
     *  node ends with the global result in @p data. */
    void allReduceSumVec(sim::Process &proc, std::uint64_t *data,
                         std::size_t count);

    /** Replicate @p len bytes of @p root's heap at @p addr to the same
     *  address on every node. */
    void broadcastBytes(sim::Process &proc, int root, HeapAddr addr,
                        std::uint32_t len);

    /** @} */

    /** @name Application hooks. @{ */

    /** Register an application active-message handler. */
    am::HandlerId registerHandler(am::ActiveMessages::Handler fn);

    /** Send an application active message to @p peer (comm-timed). */
    bool
    requestTo(sim::Process &proc, int peer, am::HandlerId handler,
              const am::Args &args,
              std::span<const std::uint8_t> payload = {})
    {
        CommTimer t(*this);
        return _am.request(proc, channelTo(peer), handler, args,
                           payload);
    }

    /** Poll the network (call during long sends or waits). */
    void poll(sim::Process &proc) { _am.poll(proc); }

    /** Poll until @p pred holds. */
    bool
    pollUntil(sim::Process &proc, const std::function<bool()> &pred)
    {
        CommTimer t(*this);
        return _am.pollUntil(proc, pred);
    }

    /** @} */

    /** @name Computation charging (drives Table 1 / Fig. 7). @{ */

    void chargeFlops(sim::Process &proc, std::uint64_t n);
    void chargeIntOps(sim::Process &proc, std::uint64_t n);
    void chargeTime(sim::Process &proc, sim::Tick t);

    /** @} */

    /** RAII: attribute enclosed wall time to communication. */
    class CommTimer
    {
      public:
        explicit CommTimer(Runtime &rt)
            : rt(rt), start(rt.unet.host().simulation().now())
        {
            ++rt.commDepth;
        }

        ~CommTimer()
        {
            if (--rt.commDepth == 0)
                rt._profile.comm +=
                    rt.unet.host().simulation().now() - start;
        }

      private:
        Runtime &rt;
        sim::Tick start;
    };

  private:
    friend class CommTimer;

    std::uint8_t *heapAt(HeapAddr addr, std::size_t len);

    /** Lazily allocated, call-site-symmetric scratch regions. */
    HeapAddr scratchFor(const std::string &key, std::size_t bytes);

    UNet &unet;                 // hb-exempt(reference, set once)
    Endpoint &ep;               // hb-exempt(reference, set once)
    int _self;                  // hb-exempt(const after ctor)
    int _procs;                 // hb-exempt(const after ctor)
    am::ActiveMessages _am;     // hb-exempt(own per-channel custody)
    Profile _profile;           // hb-exempt(commutative metrics sink)

    std::vector<std::uint8_t> heap; // hb-guarded(stateGuard)
    std::size_t heapBrk = 0;        // hb-guarded(stateGuard)

    std::vector<ChannelId> channels; // hb-exempt(setup-time only)

    /** @name Reserved handler state. @{ */
    am::HandlerId hGetReq;      // hb-exempt(const after ctor)
    am::HandlerId hGetDone;     // hb-exempt(const after ctor)
    am::HandlerId hBarrier;     // hb-exempt(const after ctor)
    am::HandlerId nextHandler = 1; // hb-exempt(setup-time only)

    /** Bounce-buffer size for blocking reads. */
    static constexpr std::size_t readStageBytes = 256 * 1024;
    /** @} */

    std::uint64_t getsIssued = 0; // hb-guarded(stateGuard)
    std::uint64_t getsDone = 0;   // hb-guarded(stateGuard)

    std::uint64_t barrierEpoch = 0; // hb-guarded(stateGuard)
    // hb-guarded(stateGuard)
    std::map<std::pair<std::uint64_t, std::uint32_t>, int> barrierSeen;

    std::map<std::string, HeapAddr> scratch; // hb-guarded(stateGuard)
    int commDepth = 0;            // hb-guarded(stateGuard)

    /** Custody over heap/getsDone/barrierSeen/scratch: mutated by the
     *  node's own fiber directly and via AM handlers it polls. */
    check::ContextGuard stateGuard{"splitc runtime state"};
};

} // namespace unet::splitc

#endif // UNET_SPLITC_RUNTIME_HH
