/**
 * @file
 * DECchip DC21140 Fast Ethernet controller model.
 *
 * The DC21140 is "a PCI bus master capable of transferring complete
 * frames to and from host memory via DMA. It includes a few on-chip
 * control and status registers, a DMA engine, and a 32-bit Ethernet CRC
 * generator/checker. The board maintains circular send and receive
 * rings, containing descriptors which point to buffers for data
 * transmission and reception in host memory."
 *
 * The model reproduces that interface: descriptor rings with ownership
 * bits, two buffer pointers per transmit descriptor (kernel header +
 * user payload — the zero-copy trick of U-Net/FE), a transmit poll
 * demand register, and a receive interrupt. "The design of the DC21140
 * assumes that a single operating system agent will multiplex access to
 * the hardware" — that agent is unet::UNetFe.
 */

#ifndef UNET_NIC_DC21140_HH
#define UNET_NIC_DC21140_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/access.hh"
#include "eth/frame.hh"
#include "eth/network.hh"
#include "fault/fwd.hh"
#include "host/host.hh"
#include "obs/metrics.hh"
#include "obs/trace_ctx.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace unet::nic {

/** Timing and sizing parameters for the DC21140 model. */
struct Dc21140Spec
{
    std::size_t txRingSize = 64;
    std::size_t rxRingSize = 64;

    /** Size of each pre-posted receive buffer. */
    std::size_t rxBufferBytes = 1536;

    /** Poll-demand processing before the first descriptor fetch. */
    sim::Tick txPollDelay = sim::nanoseconds(400);

    /** Descriptor size moved across the bus per fetch/writeback. */
    std::size_t descriptorBytes = 16;

    /**
     * Residual latency from last wire byte to data visible in host
     * memory (reception DMA is pipelined with the wire).
     */
    sim::Tick rxResidualDma = sim::microsecondsF(2.0);

    /** Internal per-frame processing in the NIC state machine. */
    sim::Tick perFrameProcessing = sim::nanoseconds(250);

    /** Frames the TX engine works ahead of the wire (the on-chip FIFO
     *  lets descriptor fetch + DMA overlap the current
     *  transmission). */
    std::size_t txPrefetchDepth = 2;
};

/** Transmit descriptor (lives in host memory, modeled in place). */
struct TxDescriptor
{
    /** Ownership: true = NIC may transmit this entry. */
    bool own = false;

    /** First buffer (kernel header) offset/length in host memory. */
    std::uint32_t buf1Offset = 0;
    std::uint32_t buf1Length = 0;

    /** Second buffer (user payload), length 0 if unused. */
    std::uint32_t buf2Offset = 0;
    std::uint32_t buf2Length = 0;

    /** Raise the interrupt when this frame has been sent. */
    bool interruptOnComplete = false;

    /** Status writeback: set once the frame left the wire. */
    bool transmitted = false;

    /** Status writeback: frame abandoned (excessive collisions). */
    bool aborted = false;

    /** Message-trace custody state, set by the driver. */
    obs::TraceContext trace;
};

/** Receive descriptor (lives in host memory, modeled in place). */
struct RxDescriptor
{
    /** Ownership: true = NIC may fill this entry. */
    bool own = false;

    /** Pre-posted buffer in host memory. */
    std::uint32_t bufOffset = 0;
    std::uint32_t bufLength = 0;

    /** Status writeback. */
    bool complete = false;
    std::uint32_t frameLength = 0;

    /** Message-trace custody state, set with the writeback. */
    obs::TraceContext trace;
};

/** The NIC device. */
class Dc21140 : public eth::Station
{
  public:
    /**
     * @param host    Host whose bus/memory/interrupts we use.
     * @param network Medium to attach to (hub, switch, or link).
     * @param address This interface's MAC address.
     */
    Dc21140(host::Host &host, eth::Network &network,
            eth::MacAddress address, Dc21140Spec spec = {});

    const eth::MacAddress &address() const { return _address; }
    const Dc21140Spec &spec() const { return _spec; }
    host::InterruptLine &interrupt() { return *irq; }

    /** @name Driver-visible descriptor rings. @{ */
    TxDescriptor &txDesc(std::size_t i) { return txRing.at(i); }
    const TxDescriptor &txDesc(std::size_t i) const
    { return txRing.at(i); }
    RxDescriptor &rxDesc(std::size_t i) { return rxRing.at(i); }
    std::size_t txRingSize() const { return txRing.size(); }
    std::size_t rxRingSize() const { return rxRing.size(); }

    /** Index of the next TX descriptor the driver should fill. */
    std::size_t txTail() const { return _txTail; }

    /** Advance the driver's TX fill pointer. */
    void
    bumpTxTail()
    {
        _txTail = (_txTail + 1) % txRing.size();
    }

    /** Index of the next RX descriptor the NIC will fill. */
    std::size_t rxHead() const { return _rxHead; }
    /** @} */

    /**
     * Custody guard for the driver-side TX fill window (no-op unless
     * UNET_CHECK). Descriptor *processing* is arbitrated by the own
     * bits, but the fill of one descriptor — claim the tail slot,
     * write its fields, publish with own=true, bump the tail — must be
     * a single non-interleaved sequence: "a single operating system
     * agent will multiplex access to the hardware". The driver opens a
     * Scope around each fill; a fill that yields mid-window while
     * another context fills is flagged.
     */
    check::ContextGuard &txFillGuard() { return _txFillGuard; }

    /**
     * CSR1 transmit poll demand: kick the TX engine. The driver charges
     * its own PIO cost; this starts the device-side state machine.
     */
    void pollDemand();

    /**
     * Driver hook run right after a TX descriptor's status writeback
     * (own bit cleared): lets the driver reap the slot — release the
     * user fragment's ownership and the endpoint's residency pin — the
     * moment the frame leaves, instead of lazily at the next trap.
     * Costs nothing (the writeback already happened); purely a custody
     * hand-back.
     */
    void
    onTxComplete(std::function<void(std::size_t slot)> fn)
    {
        txCompleteFn = std::move(fn);
    }

    /** @name Statistics. @{ */
    /** When the most recent frame began serializing onto the wire. */
    sim::Tick lastTxWireStart() const { return _lastTxWireStart; }
    std::uint64_t framesSent() const { return _framesSent.value(); }
    std::uint64_t framesReceived() const { return _framesRecv.value(); }
    std::uint64_t rxMissed() const { return _rxMissed.value(); }
    std::uint64_t txAborted() const { return _txAborted.value(); }
    /** @} */

    /** eth::Station: a frame arrived from the medium. */
    void frameArrived(const eth::Frame &frame) override;

    /** Fault plane: interpose on receive DMA completions. Honours
     *  drop (the completion vanishes) and corrupt (the DMA'd bytes are
     *  damaged — the kernel's FCS check catches it); duplication and
     *  delay are ignored here to preserve the RX pipeline's FIFO
     *  pairing. Null detaches. */
    void setRxFaultInjector(fault::Injector *inj) { rxFaultInjector = inj; }

  private:
    /** Fetch and process the next TX descriptor, or idle. */
    void txFetchNext();

    host::Host &host;               // hb-exempt(reference, set once)
    Dc21140Spec _spec;              // hb-exempt(const after ctor)
    eth::MacAddress _address;       // hb-exempt(const after ctor)
    eth::Tap *tap;                  // hb-exempt(set once at attach)
    fault::Injector *rxFaultInjector = nullptr; // hb-exempt(setup-time only)
    std::unique_ptr<host::InterruptLine> irq;   // hb-exempt(set once)
    std::function<void(std::size_t)> txCompleteFn; // hb-exempt(setup-time only)

    std::vector<TxDescriptor> txRing; // hb-guarded(_txFillGuard)
    std::vector<RxDescriptor> rxRing; // hb-exempt(device rx pipeline, one event chain)
    check::ContextGuard _txFillGuard{"dc21140 tx descriptor ring"};
    // hb-guarded(_txFillGuard)
    std::size_t txHead = 0;  ///< next descriptor the NIC processes
    std::size_t _txTail = 0; ///< next descriptor the driver fills // hb-guarded(_txFillGuard)
    std::size_t _rxHead = 0; ///< next descriptor the NIC fills // hb-exempt(device rx pipeline)
    bool txActive = false;      // hb-guarded(_txFillGuard)
    bool txFetching = false;    ///< a descriptor fetch is in progress // hb-guarded(_txFillGuard)
    std::size_t txInFlight = 0; ///< frames handed to the wire // hb-guarded(_txFillGuard)

    /** TX gather/staging buffers, reused across frames (txFetching
     *  serializes the gather stage, so one of each suffices). */
    // hb-guarded(_txFillGuard)
    std::vector<std::uint8_t> txGather;
    eth::Frame txFrame;             // hb-guarded(_txFillGuard)

    /** An RX frame between the wire tail and descriptor writeback. */
    struct PendingRx
    {
        std::vector<std::uint8_t> bytes;
        RxDescriptor *desc = nullptr;
        obs::TraceContext trace;
    };

    /** RX frames in the residual-DMA / bus pipeline (FIFO: constant
     *  residual latency, then the serial bus). */
    // hb-exempt(device rx pipeline, one event chain)
    sim::SlotRing<PendingRx> rxPending;
    std::size_t rxStaged = 0; ///< entries already past the residual // hb-exempt(device rx pipeline)

    sim::Tick _lastTxWireStart = 0; // hb-guarded(_txFillGuard)
    sim::Counter _framesSent;       // hb-exempt(commutative metrics sink)
    sim::Counter _framesRecv;       // hb-exempt(commutative metrics sink)
    sim::Counter _rxMissed;         // hb-exempt(commutative metrics sink)
    sim::Counter _txAborted;        // hb-exempt(commutative metrics sink)

    /** Trace track names (interned lazily by the session). */
    std::string _trackCpu;          // hb-exempt(const after ctor)
    std::string _trackNic;          // hb-exempt(const after ctor)

    obs::MetricGroup _metrics;      // hb-exempt(registration RAII)
};

} // namespace unet::nic

#endif // UNET_NIC_DC21140_HH
