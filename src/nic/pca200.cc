#include "nic/pca200.hh"

#include "check/access.hh"
#include "check/hb/auditor.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::nic {

using namespace sim::literals;

Pca200::Pca200(host::Host &host, atm::AtmLink &link, Pca200Spec spec)
    : host(host), _spec(spec), coproc(host.simulation()),
      _residency(host.simulation(), spec.vep,
                 "host." + host.name() + ".unet.vep"),
      tap(&link.attach(*this)),
      rxService(host.simulation().events(), [this] { serviceRxFifo(); }),
      _trackCpu(host.name() + ".cpu"), _trackFw(host.name() + ".fw"),
      _metrics(host.simulation().metrics(),
               host.simulation().metrics().uniquePrefix(
                   "host." + host.name() + ".nic.pca200"))
{
    _metrics.counter("cellsSent", _cellsSent);
    _metrics.counter("cellsReceived", _cellsRecv);
    _metrics.counter("messagesSent", _msgsSent);
    _metrics.counter("messagesDelivered", _msgsDeliv);
    _metrics.counter("fifoOverflows", _fifoOverflow);
    _metrics.counter("noBufferDrops", _noBuffer);
    _metrics.counter("badVciCells", _badVci);
    _metrics.counter("crcDrops", _crcDrops);
}

void
Pca200::attachEndpoint(Endpoint *ep)
{
    EpState &state = endpoints[ep->id()];
    state.ep = ep;
    state.txService.emplace(host.simulation().events(),
                            [this, &state] { serviceTx(state); });
    if (epIndex.size() <= ep->id())
        epIndex.resize(ep->id() + 1, nullptr);
    epIndex[ep->id()] = &state;
    // Attachment loads the endpoint block into adapter SRAM (boot-time
    // command-queue work, not a fault): rigs that fit the hot set
    // never page at all.
    _residency.warm(ep->id());
}

void
Pca200::detachEndpoint(Endpoint &ep)
{
    auto it = endpoints.find(ep.id());
    if (it == endpoints.end())
        UNET_PANIC("detaching endpoint not attached to this PCA-200");
    if (it->second.txScheduled)
        UNET_FATAL("detaching endpoint ", ep.id(),
                   " while the firmware services its send queue");
    for (const auto &[vci, vc] : vcs)
        if (vc.ep == &ep)
            UNET_FATAL("detaching endpoint ", ep.id(), " with VCI ",
                       vci, " still installed (removeVci first)");
    // Panics if the endpoint still holds a pin (in-flight custody).
    _residency.remove(ep.id());
    epIndex[ep.id()] = nullptr;
    endpoints.erase(it);
}

void
Pca200::installVci(atm::Vci vci, Endpoint *ep, ChannelId chan)
{
    auto [it, inserted] = vcs.try_emplace(vci);
    if (!inserted)
        UNET_FATAL("VCI ", vci, " already installed on this PCA-200");
    it->second.ep = ep;
    it->second.channel = chan;
    if (vciIndex.size() <= vci)
        vciIndex.resize(static_cast<std::size_t>(vci) + 1, nullptr);
    vciIndex[vci] = &it->second;
}

void
Pca200::removeVci(atm::Vci vci)
{
    if (vci < vciIndex.size())
        vciIndex[vci] = nullptr;
    vcs.erase(vci);
}

void
Pca200::doorbell(Endpoint *ep)
{
    if (ep->id() >= epIndex.size() || !epIndex[ep->id()])
        UNET_PANIC("doorbell for unattached endpoint");
    scheduleTxService(*epIndex[ep->id()]);
}

void
Pca200::doorbellTrain(Endpoint *ep, std::size_t n)
{
    if (ep->id() >= epIndex.size() || !epIndex[ep->id()])
        UNET_PANIC("doorbell for unattached endpoint");
    if (n == 0)
        return;
    EpState &state = *epIndex[ep->id()];
    // Followers accumulate: a second burst arriving mid-drain extends
    // the contiguous run the firmware can read without re-polling.
    state.trainRemaining += n - 1;
    scheduleTxService(state);
}

void
Pca200::scheduleTxService(EpState &state)
{
    if (state.txScheduled)
        return;
    state.txScheduled = true;

    // A doorbell for a cold endpoint makes the firmware DMA its block
    // back into adapter SRAM before servicing: the page-in rides the
    // poll latency. The endpoint stays pinned — in-flight custody —
    // until the drain finds the send queue empty.
    sim::Tick fault = _residency.touch(state.ep->id());
    _residency.pin(state.ep->id());

    // Weighted polling: "endpoints with recent activity are polled more
    // frequently given that they are most likely to correspond to a
    // running process".
    sim::Tick now = host.simulation().now();
    bool active = state.lastActive >= 0 &&
        now - state.lastActive < _spec.activityWindow;
    sim::Tick latency = active ? _spec.txPollActive : _spec.txPollIdle;
    state.txService->scheduleIn(latency + fault);
}

void
Pca200::serviceTx(EpState &state, bool chained)
{
    // Shard attribution: i960 firmware work belongs to this host.
    check::hb::ScopedTaskDomain shard(host.name());
    // Firmware-side custody of the send ring: runs in the i960 event
    // context (always legal), but the scope catches a user fiber that
    // yielded mid-push while we pop.
    check::ContextGuard::Scope scope(state.ep->sendGuard(),
                                     "firmware tx poll");
    auto desc = state.ep->sendQueue().pop();
    if (!desc) {
        state.txScheduled = false;
        state.trainRemaining = 0; // any unread train followers are gone
        _residency.unpin(state.ep->id());
        return;
    }
    // A self-chained pop inside a descriptor train skips the
    // per-descriptor queue read: the whole train came over in the
    // head's burst.
    sim::Tick per_msg = _spec.txPerMessage;
    if (chained && state.trainRemaining > 0) {
        per_msg = _spec.txPerMessageTrain;
        --state.trainRemaining;
    }
#if UNET_TRACE
    // The firmware takes custody of the message at the pop.
    if (auto *tr = host.simulation().trace())
        tr->hop(desc->trace, obs::SpanKind::TxPost, _trackCpu,
                host.simulation().now());
#endif
    if (!desc->isInline)
        for (std::uint8_t i = 0; i < desc->fragmentCount; ++i)
            state.ep->ownership().claimSend(desc->fragments[i]);
    transmitMessage(state, *desc, per_msg);
}

void
Pca200::transmitMessage(EpState &state, const SendDescriptor &desc,
                        sim::Tick per_msg)
{
    Endpoint &ep = *state.ep;
    if (!ep.channelValid(desc.channel)) {
        UNET_WARN("pca200: send on invalid channel ", desc.channel,
                  "; dropped");
        if (!desc.isInline)
            for (std::uint8_t i = 0; i < desc.fragmentCount; ++i)
                ep.ownership().releaseSend(desc.fragments[i]);
        serviceTx(state, /*chained=*/true);
        return;
    }
    atm::Vci vci = ep.channel(desc.channel).vci;

    // Gather the payload: inline from the (NIC-resident) descriptor or
    // by DMA from the user buffer area in host memory. Once gathered,
    // the application may reuse the fragments. The staging vectors live
    // in the EpState and keep their capacity across messages.
    state.txPayload.clear();
    if (desc.isInline) {
        state.txPayload.assign(desc.inlineData.begin(),
                               desc.inlineData.begin() +
                                   desc.inlineLength);
    } else {
        for (std::uint8_t i = 0; i < desc.fragmentCount; ++i) {
            auto span = ep.buffers().span(desc.fragments[i]);
            state.txPayload.insert(state.txPayload.end(), span.begin(),
                                   span.end());
            ep.ownership().releaseSend(desc.fragments[i]);
        }
    }

    atm::aal5::segmentInto(state.txPayload, vci, state.txCells);
    state.txCellIdx = 0;
    state.txTrace = desc.trace; // recycled state: always (re)assign

    // Per-message firmware work, then (for buffer-area sends) the DMA
    // from host memory, then per-cell emission.
    std::size_t dma_bytes = desc.isInline ? 0 : state.txPayload.size();
    coproc.run(per_msg, [this, &state, dma_bytes] {
        if (dma_bytes)
            host.bus().dma(dma_bytes,
                           [this, &state] { emitNextCell(state); });
        else
            emitNextCell(state);
    });
}

void
Pca200::emitNextCell(EpState &state)
{
    // Emit cells one at a time; each costs i960 segmentation work and
    // then paces onto the fiber. All state lives in the EpState, so
    // each hop is a two-pointer capture — no heap emitter chain.
    coproc.run(_spec.txPerCell, [this, &state] {
        atm::Cell &cell = state.txCells[state.txCellIdx];
#if UNET_TRACE
        // Only a PDU's final cell carries the custody state; the
        // firmware hands off to the wire when that cell leaves.
        if (cell.endOfPdu) {
            if (auto *tr = host.simulation().trace())
                tr->hop(state.txTrace, obs::SpanKind::TxFw, _trackFw,
                        host.simulation().now());
            cell.trace = state.txTrace; // recycled cell: always assign
        }
#endif
        tap->send(cell);
        ++_cellsSent;
        if (++state.txCellIdx < state.txCells.size()) {
            emitNextCell(state);
        } else {
            ++_msgsSent;
            state.lastActive = host.simulation().now();
            serviceTx(state, /*chained=*/true); // next queued message
        }
    });
}

void
Pca200::cellArrived(const atm::Cell &cell)
{
    ++_cellsRecv;

    // Fault plane: host-side/adapter faults. Drop loses the cell
    // before FIFO admission; corruption flips a payload bit that the
    // AAL5 CRC check catches at reassembly.
    std::uint32_t faultBit = 0;
    bool corrupt = false;
    if (rxFaultInjector) {
        fault::Decision d =
            rxFaultInjector->decide(atm::Cell::payloadBytes * 8);
        if (d.faulty()) {
            rxFaultInjector->stamp(cell.trace, d);
            if (d.drop)
                return;
            corrupt = d.corrupt;
            faultBit = d.corruptBit;
        }
    }

    if (rxFifo.size() >= _spec.rxFifoCells) {
        ++_fifoOverflow;
        return;
    }
    atm::Cell &slot = rxFifo.pushSlot();
    slot = cell;
    if (corrupt)
        fault::flipBit(slot.payload, faultBit);
#if UNET_TRACE
    // Wire custody ends when the final cell lands in the input FIFO.
    if (slot.endOfPdu)
        if (auto *tr = host.simulation().trace())
            tr->hop(slot.trace, obs::SpanKind::Wire, "atm.wire",
                    host.simulation().now());
#endif
    if (!rxServiceScheduled) {
        rxServiceScheduled = true;
        rxService.scheduleIn(_spec.rxPollLatency);
    }
}

void
Pca200::serviceRxFifo()
{
    if (rxFifo.empty()) {
        rxServiceScheduled = false;
        return;
    }
    atm::Cell cell = rxFifo.front();
    rxFifo.popFront();
    handleCell(cell);
}

void
Pca200::handleCell(const atm::Cell &cell)
{
    // Cells arrive on a chain that started on the remote sender's
    // shard; reassembly and delivery are this host's firmware work.
    check::hb::ScopedTaskDomain shard(host.name());
    auto next = [this] { serviceRxFifo(); };

    VcState *vcp =
        cell.vci < vciIndex.size() ? vciIndex[cell.vci] : nullptr;
    if (!vcp) {
        ++_badVci;
        coproc.run(0.5_us, next);
        return;
    }
    VcState &vc = *vcp;

    // The endpoint's adapter-SRAM block (free-queue head, reassembly
    // state) must be resident before the cell can be steered into it;
    // a miss pays the page-in on this cell's firmware cost.
    sim::Tick fault = _residency.touch(vc.ep->id());

    // Single-cell fast path: "Receiving single-cell messages is
    // special-cased ... directly transferred into the next empty
    // receive queue entry".
    if (!vc.firstCellSeen && cell.endOfPdu &&
        _spec.singleCellOptimization) {
        // Pinned across the firmware work + descriptor DMA: custody
        // ends when the message is delivered (or the CRC drops it).
        _residency.pin(vc.ep->id());
        auto payload = vc.reasm.addCell(cell);
        coproc.run(_spec.rxSingleCell + fault,
                   [this, &vc, payload = std::move(payload), next,
                    ctx = cell.trace]() mutable {
            if (!payload) {
                ++_crcDrops;
                _residency.unpin(vc.ep->id());
            } else if (payload->size() > smallMessageMax) {
                // A single cell always fits the inline descriptor.
                UNET_PANIC("single-cell PDU larger than inline area");
            } else {
                // DMA descriptor + data into the host-resident queue.
                host.bus().dma(64, [this, &vc,
                                    payload = std::move(payload),
                                    ctx]() mutable {
                    RecvDescriptor rd;
                    rd.channel = vc.channel;
                    rd.length =
                        static_cast<std::uint32_t>(payload->size());
                    rd.isSmall = true;
                    std::copy(payload->begin(), payload->end(),
                              rd.inlineData.begin());
#if UNET_TRACE
                    if (auto *tr = host.simulation().trace())
                        tr->hop(ctx, obs::SpanKind::RxFw, _trackFw,
                                host.simulation().now());
#endif
                    rd.trace = ctx;
                    if (vc.ep->deliver(rd))
                        ++_msgsDeliv;
                    _residency.unpin(vc.ep->id());
                });
            }
            next();
        });
        return;
    }

    // Multi-cell path.
    sim::Tick cost = _spec.rxPerCell + fault;
    if (!vc.firstCellSeen) {
        vc.firstCellSeen = true;
        // Reassembly in progress: the endpoint's buffer chain lives in
        // its SRAM block — pinned until the PDU completes or aborts.
        _residency.pin(vc.ep->id());
        cost += _spec.rxFirstCellExtra;
    }
    if (cell.endOfPdu)
        cost += _spec.rxLastCellExtra;

    auto payload = vc.reasm.addCell(cell);

    if (!vc.poisoned) {
        // Ensure buffer space for this cell's 48 bytes.
        std::uint32_t capacity = 0;
        for (const auto &b : vc.buffers)
            capacity += b.length;
        if (vc.filled + atm::Cell::payloadBytes > capacity) {
            std::optional<BufferRef> buf;
            if (vc.buffers.size() < maxFragments) {
                check::ContextGuard::Scope scope(
                    vc.ep->freeGuard(), "firmware rx buffer claim");
                buf = vc.ep->freeQueue().pop();
            }
            if (!buf) {
                ++_noBuffer;
                vc.poisoned = true;
            } else {
                vc.ep->ownership().claimRecv(*buf);
                vc.buffers.push_back(*buf);
            }
        }
        if (!vc.poisoned) {
            vc.filled += atm::Cell::payloadBytes;
            // Cell payload DMA into the user buffer area (charged here;
            // the bytes land when the PDU completes).
            host.bus().dma(atm::Cell::payloadBytes, nullptr);
        }
    }

    bool end = cell.endOfPdu;
    if (end)
        vc.trace = cell.trace; // recycled VC state: always (re)assign
    coproc.run(cost, [this, &vc, end, payload = std::move(payload),
                      next]() mutable {
        if (end) {
            if (!payload || vc.poisoned) {
                if (!payload)
                    ++_crcDrops;
                // Return any claimed buffers.
                for (const auto &b : vc.buffers)
                    recycleRxBuffer(vc.ep, b);
            } else {
                completePdu(vc, std::move(*payload));
            }
            vc.buffers.clear();
            vc.filled = 0;
            vc.firstCellSeen = false;
            vc.poisoned = false;
            vc.trace = {};
            _residency.unpin(vc.ep->id());
        }
        next();
    });
}

void
Pca200::recycleRxBuffer(Endpoint *ep, BufferRef buf)
{
    check::ContextGuard::Scope scope(ep->freeGuard(),
                                     "firmware rx buffer recycle");
    if (ep->freeQueue().push(buf))
        ep->ownership().unclaimRecv(buf);
    else
        // Full free queue: the buffer is lost to the protection domain.
        ep->ownership().releaseRecv(buf);
}

void
Pca200::completePdu(VcState &vc, std::vector<std::uint8_t> payload)
{
    RecvDescriptor rd;
    rd.channel = vc.channel;
    rd.length = static_cast<std::uint32_t>(payload.size());
    rd.isSmall = false;

    std::size_t written = 0;
    std::size_t bi = 0;
    for (; bi < vc.buffers.size() && written < payload.size(); ++bi) {
        BufferRef buf = vc.buffers[bi];
        std::uint32_t chunk = std::min<std::uint32_t>(
            buf.length,
            static_cast<std::uint32_t>(payload.size() - written));
        vc.ep->ownership().rxWrite({buf.offset, chunk});
        vc.ep->buffers().write(
            {buf.offset, chunk},
            std::span(payload.data() + written, chunk));
        rd.buffers[rd.bufferCount++] = {buf.offset, chunk};
        written += chunk;
    }
    // Any wholly unused buffers go back to the free queue.
    for (std::size_t i = bi; i < vc.buffers.size(); ++i)
        recycleRxBuffer(vc.ep, vc.buffers[i]);

#if UNET_TRACE
    if (auto *tr = host.simulation().trace())
        tr->hop(vc.trace, obs::SpanKind::RxFw, _trackFw,
                host.simulation().now());
#endif
    rd.trace = vc.trace;
    if (vc.ep->deliver(rd)) {
        ++_msgsDeliv;
    } else {
        // Receive queue full: the message is lost; recycle its buffers
        // at their original (untruncated) size so no tail bytes leak
        // out of the free-buffer pool.
        for (std::size_t i = 0; i < bi; ++i)
            recycleRxBuffer(vc.ep, vc.buffers[i]);
    }
}

} // namespace unet::nic
