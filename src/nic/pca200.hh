/**
 * @file
 * FORE Systems PCA-200 ATM adapter running U-Net firmware.
 *
 * The PCA-200 "includes an on-board processor which performs the
 * segmentation and reassembly of packets as well as transfers data
 * to/from host memory using DMA". The U-Net implementation "uses custom
 * firmware to implement the U-Net architecture directly on the
 * PCA-200": this class *is* that firmware, executing on the modeled
 * i960 (nic::I960) against the shared unet::Endpoint structures.
 *
 * Queue placement follows the paper: send and free queues live in
 * NIC memory (host pushes via PIO, i960 polls them for free), receive
 * queues live in host memory (i960 pushes via DMA, host polls for
 * free). Transmit polling is weighted — "endpoints with recent
 * activity are polled more frequently". Single-cell receives go
 * straight into the receive-queue entry, skipping buffer allocation.
 */

#ifndef UNET_NIC_PCA200_HH
#define UNET_NIC_PCA200_HH

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "atm/aal5.hh"
#include "atm/link.hh"
#include "fault/fwd.hh"
#include "host/host.hh"
#include "nic/i960.hh"
#include "obs/metrics.hh"
#include "obs/trace_ctx.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "unet/endpoint.hh"
#include "unet/vep/vep.hh"

namespace unet::nic {

/** Timing parameters for the PCA-200 firmware model. */
struct Pca200Spec
{
    /** Poll latency for endpoints with recent send activity. */
    sim::Tick txPollActive = sim::microseconds(1);

    /** Poll latency for idle endpoints. */
    sim::Tick txPollIdle = sim::microseconds(6);

    /** Activity window: endpoints used within this are "active". */
    sim::Tick activityWindow = sim::milliseconds(1);

    /** i960 per-message transmit work (descriptor read, VCI lookup,
     *  DMA setup). Single-cell send totals ~10 us with one cell. */
    sim::Tick txPerMessage = sim::microseconds(8);

    /** i960 per-message transmit work for the followers of a
     *  descriptor train (doorbellTrain): the firmware reads the whole
     *  contiguous train in one burst when it services the head, so
     *  followers skip the per-descriptor queue read and most of the
     *  DMA setup. */
    sim::Tick txPerMessageTrain = sim::microseconds(2);

    /** i960 per-cell transmit work (segmentation, FIFO push). */
    sim::Tick txPerCell = sim::microseconds(2);

    /** Latency from cell-in-FIFO to firmware attention when idle. */
    sim::Tick rxPollLatency = sim::nanoseconds(1500);

    /** i960 cost of a complete single-cell receive (the paper's
     *  "approximately 13 us" for a 40-byte message). */
    sim::Tick rxSingleCell = sim::microseconds(13);

    /** i960 per-cell receive work on the multi-cell path. */
    sim::Tick rxPerCell = sim::microsecondsF(2.2);

    /** Extra first-cell work: allocate a buffer from the free queue
     *  in NIC memory and set up the reassembly state. */
    sim::Tick rxFirstCellExtra = sim::microseconds(12);

    /** Extra last-cell work: CRC check (hardware), build + DMA the
     *  multi-buffer receive descriptor to host memory. */
    sim::Tick rxLastCellExtra = sim::microseconds(12);

    /** Input FIFO depth in cells. */
    std::size_t rxFifoCells = 256;

    /** Single-cell receives bypass buffer allocation and go straight
     *  into the receive-queue entry (ablation knob). */
    bool singleCellOptimization = true;

    /** Endpoint virtualization: hot-set capacity in adapter SRAM and
     *  page-in/out fault costs (the i960 DMAs cold endpoint state in
     *  from host memory on a doorbell or demux miss). */
    vep::VepSpec vep;
};

/** The adapter + firmware. */
class Pca200 : public atm::CellSink
{
  public:
    /**
     * @param host Host whose bus and memory the adapter masters.
     * @param link Fiber to attach to.
     */
    Pca200(host::Host &host, atm::AtmLink &link, Pca200Spec spec = {});

    const Pca200Spec &spec() const { return _spec; }
    I960 &i960() { return coproc; }

    /** @name Driver (host) interface — via the command queue. @{ */

    /** Make the firmware service this endpoint's queues. */
    void attachEndpoint(Endpoint *ep);

    /** Forget an endpoint (destroy). Panics while the firmware is
     *  servicing its send queue or a VCI still routes to it. */
    void detachEndpoint(Endpoint &ep);

    /** Endpoint hot set in adapter SRAM (residency, faults, pins). */
    vep::ResidencyCache &residency() { return _residency; }
    const vep::ResidencyCache &residency() const { return _residency; }

    /** Install receive demux: cells on @p vci go to (@p ep, @p chan). */
    void installVci(atm::Vci vci, Endpoint *ep, ChannelId chan);

    /** Remove a receive demux entry. */
    void removeVci(atm::Vci vci);

    /** Doorbell: the host pushed onto @p ep's (NIC-resident) send
     *  queue. The i960 will poll it per the weighted schedule. */
    void doorbell(Endpoint *ep);

    /**
     * Doorbell for a contiguous train of @p n descriptors pushed in
     * one burst (sendv). One firmware poll services the head at full
     * per-message cost; the n-1 followers are read out of the same
     * burst and cost Pca200Spec::txPerMessageTrain each. A train of
     * one is exactly doorbell().
     */
    void doorbellTrain(Endpoint *ep, std::size_t n);

    /** @} */

    /** @name Statistics. @{ */
    std::uint64_t cellsSent() const { return _cellsSent.value(); }
    std::uint64_t cellsReceived() const { return _cellsRecv.value(); }
    std::uint64_t messagesSent() const { return _msgsSent.value(); }
    std::uint64_t messagesDelivered() const { return _msgsDeliv.value(); }
    std::uint64_t fifoOverflows() const { return _fifoOverflow.value(); }
    std::uint64_t noBufferDrops() const { return _noBuffer.value(); }
    std::uint64_t badVciCells() const { return _badVci.value(); }
    std::uint64_t crcDrops() const { return _crcDrops.value(); }
    /** @} */

    /** atm::CellSink: a cell arrived from the fiber. */
    void cellArrived(const atm::Cell &cell) override;

    /** Fault plane: interpose on cells entering the adapter's input
     *  FIFO. Honours drop and corrupt (a flipped payload bit trips the
     *  AAL5 CRC at reassembly); duplication and delay are ignored here
     *  to preserve FIFO service order. Null detaches. */
    void setRxFaultInjector(fault::Injector *inj) { rxFaultInjector = inj; }

  private:
    struct EpState
    {
        Endpoint *ep = nullptr;
        sim::Tick lastActive = -1;
        bool txScheduled = false;

        /** Descriptor-train followers still eligible for the cheap
         *  txPerMessageTrain read (set by doorbellTrain, consumed by
         *  self-chained serviceTx pops, cleared when the queue runs
         *  dry). */
        std::size_t trainRemaining = 0;

        /** Reusable poll event (the endpoints map gives EpState a
         *  stable address, so the closure can capture it). */
        std::optional<sim::MemberEvent> txService;

        /** Per-endpoint transmit staging, reused across messages (one
         *  message is in flight per endpoint at a time). */
        std::vector<std::uint8_t> txPayload;
        std::vector<atm::Cell> txCells;
        std::size_t txCellIdx = 0;

        /** Custody state of the message being segmented. */
        obs::TraceContext txTrace;
    };

    /** Per-VC receive reassembly state. */
    struct VcState
    {
        Endpoint *ep = nullptr;
        ChannelId channel = invalidChannel;
        atm::aal5::Reassembler reasm;
        std::vector<BufferRef> buffers;
        std::uint32_t filled = 0;
        bool firstCellSeen = false;
        bool poisoned = false; ///< dropping until end-of-PDU

        /** Custody state from the PDU's final cell. */
        obs::TraceContext trace;
    };

    void scheduleTxService(EpState &state);

    /** Pop and transmit the next queued message. @p chained marks a
     *  pop the firmware performs while already at the queue (message
     *  self-chaining); only chained pops may take the descriptor-train
     *  discount. */
    void serviceTx(EpState &state, bool chained = false);
    void transmitMessage(EpState &state, const SendDescriptor &desc,
                         sim::Tick per_msg);
    void emitNextCell(EpState &state);
    void serviceRxFifo();
    void handleCell(const atm::Cell &cell);
    void completePdu(VcState &vc, std::vector<std::uint8_t> payload);

    /** Return a claimed receive buffer to @p ep's free queue whole. */
    static void recycleRxBuffer(Endpoint *ep, BufferRef buf);

    host::Host &host;
    Pca200Spec _spec;
    I960 coproc;
    vep::ResidencyCache _residency;
    atm::CellTap *tap;
    fault::Injector *rxFaultInjector = nullptr;

    /** Keyed by Endpoint::id() — a stable integral key, so iteration
     *  order is schedule- and address-independent. std::map for node
     *  stability: the txService closures, epIndex, and vciIndex all
     *  hold addresses of the values. */
    std::map<std::size_t, EpState> endpoints;
    std::map<atm::Vci, VcState> vcs;

    /** Flat handles onto the map nodes for the hot paths: the
     *  doorbell indexes by Endpoint::id(), the per-cell receive demux
     *  indexes by VCI (16-bit, so the table stays small even full). */
    std::vector<EpState *> epIndex;
    std::vector<VcState *> vciIndex;

    sim::SlotRing<atm::Cell> rxFifo;
    sim::MemberEvent rxService; ///< reusable rx-poll event
    bool rxServiceScheduled = false;

    sim::Counter _cellsSent;
    sim::Counter _cellsRecv;
    sim::Counter _msgsSent;
    sim::Counter _msgsDeliv;
    sim::Counter _fifoOverflow;
    sim::Counter _noBuffer;
    sim::Counter _badVci;
    sim::Counter _crcDrops;

    /** Trace track names (interned lazily by the session). */
    std::string _trackCpu;
    std::string _trackFw;

    obs::MetricGroup _metrics;
};

} // namespace unet::nic

#endif // UNET_NIC_PCA200_HH
