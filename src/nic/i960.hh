/**
 * @file
 * The PCA-200's on-board i960 co-processor as a serial resource.
 *
 * The 25 MHz i960 runs the U-Net firmware. It is much slower than the
 * host ("the i960 co-processor ... is significantly slower than the
 * Pentium host and its use slows down the latency times"), and all
 * firmware work — transmit queue polling, segmentation, per-cell
 * receive handling — contends for it. Work items queue FIFO; each
 * completes its cost after every earlier item finishes.
 */

#ifndef UNET_NIC_I960_HH
#define UNET_NIC_I960_HH

#include <functional>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace unet::nic {

/** The on-board co-processor: a FIFO-serialized work resource. */
class I960
{
  public:
    explicit I960(sim::Simulation &sim) : sim(sim) {}

    /**
     * Execute @p cost of firmware work; @p on_done fires when it
     * completes (after all previously queued work). The callback is
     * forwarded straight into the pooled event queue: no type erasure
     * on the way there.
     */
    template <typename F>
    void
    run(sim::Tick cost, F &&on_done)
    {
        charge(cost);
        if constexpr (requires { static_cast<bool>(on_done); }) {
            if (!static_cast<bool>(on_done))
                return;
        }
        sim.schedule(_busyUntil, std::forward<F>(on_done));
    }

    /** Execute @p cost of firmware work with no completion callback. */
    void run(sim::Tick cost) { charge(cost); }
    void run(sim::Tick cost, std::nullptr_t) { charge(cost); }

    /** When currently queued work will drain. */
    sim::Tick busyUntil() const { return _busyUntil; }

    /** True if the co-processor has queued or running work. */
    bool busy() const { return sim.now() < _busyUntil; }

    /** @name Statistics. @{ */
    sim::Tick busyTime() const { return _busyTime; }
    std::uint64_t workItems() const { return _workItems.value(); }
    /** @} */

  private:
    /** Account @p cost of serialized work, advancing busyUntil. */
    void
    charge(sim::Tick cost)
    {
        if (cost < 0)
            UNET_PANIC("negative i960 work");
        sim::Tick start = std::max(sim.now(), _busyUntil);
        _busyUntil = start + cost;
        _busyTime += cost;
        ++_workItems;
    }

    sim::Simulation &sim;
    sim::Tick _busyUntil = 0;
    sim::Tick _busyTime = 0;
    sim::Counter _workItems;
};

} // namespace unet::nic

#endif // UNET_NIC_I960_HH
