#include "nic/dc21140.hh"

#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::nic {

Dc21140::Dc21140(host::Host &host, eth::Network &network,
                 eth::MacAddress address, Dc21140Spec spec)
    : host(host), _spec(spec), _address(address),
      tap(&network.attach(*this)),
      irq(host.makeInterruptLine("dc21140")),
      txRing(spec.txRingSize), rxRing(spec.rxRingSize),
      _trackCpu(host.name() + ".cpu"), _trackNic(host.name() + ".nic"),
      _metrics(host.simulation().metrics(),
               host.simulation().metrics().uniquePrefix(
                   "host." + host.name() + ".nic.dc21140"))
{
    _txFillGuard.setLabel(host.name() + ".dc21140.txring");
    _metrics.counter("framesSent", _framesSent);
    _metrics.counter("framesReceived", _framesRecv);
    _metrics.counter("rxMissed", _rxMissed);
    _metrics.counter("txAborted", _txAborted);
}

void
Dc21140::pollDemand()
{
    if (txActive)
        return; // engine already running; it will see new descriptors
    txActive = true;
    host.simulation().scheduleIn(_spec.txPollDelay,
                                 [this] { txFetchNext(); });
}

void
Dc21140::txFetchNext()
{
    // The engine works up to txPrefetchDepth frames ahead of the wire:
    // the on-chip FIFO lets the next descriptor fetch and buffer DMA
    // overlap the current transmission (without this, back-to-back
    // frames would be separated by a full DMA and the device could
    // never saturate the link).
    if (txFetching || txInFlight >= _spec.txPrefetchDepth)
        return;

    TxDescriptor &desc = txRing[txHead];
    if (!desc.own) {
        // Ring drained: suspend until the next poll demand.
        if (txInFlight == 0)
            txActive = false;
        return;
    }
    txFetching = true;
    txHead = (txHead + 1) % txRing.size();

    // Fetch the descriptor, then gather the frame buffers, via DMA.
    host.bus().dma(_spec.descriptorBytes, [this, &desc] {
        std::size_t total = desc.buf1Length + desc.buf2Length;
        host.bus().dma(total, [this, &desc] {
            // Gather real bytes from host memory into the reusable
            // staging buffer (txFetching stays set until the frame is
            // handed to the tap, so txGather/txFrame are exclusive).
            auto b1 = host.memory().region(desc.buf1Offset,
                                           desc.buf1Length);
            txGather.assign(b1.begin(), b1.end());
            if (desc.buf2Length) {
                auto b2 = host.memory().region(desc.buf2Offset,
                                               desc.buf2Length);
                txGather.insert(txGather.end(), b2.begin(), b2.end());
            }
            eth::Frame::fromBytesInto(txGather, txFrame);
            // The byte gather drops model metadata; re-attach the trace
            // context from the descriptor. The NIC takes custody here.
            txFrame.trace = desc.trace;
#if UNET_TRACE
            if (auto *tr = host.simulation().trace())
                tr->hop(txFrame.trace, obs::SpanKind::TxPost, _trackCpu,
                        host.simulation().now());
#endif

            host.simulation().scheduleIn(
                _spec.perFrameProcessing, [this, &desc] {
                _lastTxWireStart = host.simulation().now();
#if UNET_TRACE
                if (auto *tr = host.simulation().trace())
                    tr->hop(txFrame.trace, obs::SpanKind::TxNic,
                            _trackNic, _lastTxWireStart);
#endif
                ++txInFlight;
                tap->transmit(txFrame, [this, &desc](bool sent) {
                    // Status writeback.
                    desc.own = false;
                    desc.transmitted = sent;
                    desc.aborted = !sent;
                    if (sent)
                        ++_framesSent;
                    else
                        ++_txAborted;
                    if (desc.interruptOnComplete)
                        irq->assertLine();
                    --txInFlight;
                    if (txCompleteFn)
                        txCompleteFn(static_cast<std::size_t>(
                            &desc - txRing.data()));
                    txFetchNext();
                });
                // Prefetch the next frame while this one serializes.
                txFetching = false;
                txFetchNext();
            });
        });
    });
}

void
Dc21140::frameArrived(const eth::Frame &frame)
{
    // Perfect filtering: our unicast address or broadcast only.
    if (frame.dst != _address && !frame.dst.isBroadcast())
        return;

    // Fault plane: a lost DMA completion looks like a missed frame;
    // corruption damages the bytes after they cross the bus.
    std::uint32_t faultBit = eth::Frame::noCorruptBit;
    if (rxFaultInjector) {
        fault::Decision d =
            rxFaultInjector->decide(frame.frameBytes() * 8);
        if (d.faulty()) {
            rxFaultInjector->stamp(frame.trace, d);
            if (d.drop)
                return;
            if (d.corrupt)
                faultBit = d.corruptBit;
        }
    }

    RxDescriptor &desc = rxRing[_rxHead];
    if (!desc.own) {
        // No buffer posted: the frame is missed.
        ++_rxMissed;
        return;
    }

    if (frame.frameBytes() > desc.bufLength) {
        UNET_WARN("dc21140: ", frame.frameBytes(),
                  "-byte frame exceeds the ", desc.bufLength,
                  "-byte receive buffer; dropped");
        ++_rxMissed;
        return;
    }

    // Reception DMA is pipelined with the wire; charge the residual
    // plus the bus transaction for the tail of the frame. The frame
    // bytes sit in a recycled ring slot while in the pipeline; both
    // stages are FIFO (constant residual latency, then the serial
    // bus), so the n-th residual expiry belongs to the n-th entry.
    desc.own = false; // the NIC is filling it now
    _rxHead = (_rxHead + 1) % rxRing.size();
    PendingRx &slot = rxPending.pushSlot();
    frame.serializeInto(slot.bytes);
    if (faultBit != eth::Frame::noCorruptBit)
        fault::flipBit(slot.bytes, faultBit);
    slot.desc = &desc;
    slot.trace = frame.trace; // recycled slot: always (re)assign
    host.simulation().scheduleIn(_spec.rxResidualDma, [this] {
        PendingRx &rx = rxPending.at(rxStaged++);
        host.bus().dma(rx.bytes.size() % 128 + 32, [this] {
            PendingRx &done = rxPending.front();
            host.memory().write(done.desc->bufOffset, done.bytes);
#if UNET_TRACE
            // Wire custody ends when the frame is visible in host
            // memory (serialization + residual DMA + bus).
            if (auto *tr = host.simulation().trace())
                tr->hop(done.trace, obs::SpanKind::Wire, "eth.wire",
                        host.simulation().now());
#endif
            done.desc->trace = done.trace;
            done.desc->complete = true;
            done.desc->frameLength =
                static_cast<std::uint32_t>(done.bytes.size());
            ++_framesRecv;
            irq->assertLine();
            rxPending.popFront();
            --rxStaged;
        });
    });
}

} // namespace unet::nic
