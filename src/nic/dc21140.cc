#include "nic/dc21140.hh"

#include "sim/logging.hh"

namespace unet::nic {

Dc21140::Dc21140(host::Host &host, eth::Network &network,
                 eth::MacAddress address, Dc21140Spec spec)
    : host(host), _spec(spec), _address(address),
      tap(&network.attach(*this)),
      irq(host.makeInterruptLine("dc21140")),
      txRing(spec.txRingSize), rxRing(spec.rxRingSize)
{
}

void
Dc21140::pollDemand()
{
    if (txActive)
        return; // engine already running; it will see new descriptors
    txActive = true;
    host.simulation().scheduleIn(_spec.txPollDelay,
                                 [this] { txFetchNext(); });
}

void
Dc21140::txFetchNext()
{
    // The engine works up to txPrefetchDepth frames ahead of the wire:
    // the on-chip FIFO lets the next descriptor fetch and buffer DMA
    // overlap the current transmission (without this, back-to-back
    // frames would be separated by a full DMA and the device could
    // never saturate the link).
    if (txFetching || txInFlight >= _spec.txPrefetchDepth)
        return;

    TxDescriptor &desc = txRing[txHead];
    if (!desc.own) {
        // Ring drained: suspend until the next poll demand.
        if (txInFlight == 0)
            txActive = false;
        return;
    }
    txFetching = true;
    txHead = (txHead + 1) % txRing.size();

    // Fetch the descriptor, then gather the frame buffers, via DMA.
    host.bus().dma(_spec.descriptorBytes, [this, &desc] {
        std::size_t total = desc.buf1Length + desc.buf2Length;
        host.bus().dma(total, [this, &desc, total] {
            // Gather real bytes from host memory.
            std::vector<std::uint8_t> bytes;
            bytes.reserve(total);
            auto b1 = host.memory().read(desc.buf1Offset,
                                         desc.buf1Length);
            bytes.insert(bytes.end(), b1.begin(), b1.end());
            if (desc.buf2Length) {
                auto b2 = host.memory().read(desc.buf2Offset,
                                             desc.buf2Length);
                bytes.insert(bytes.end(), b2.begin(), b2.end());
            }
            eth::Frame frame = eth::Frame::fromBytes(bytes);

            host.simulation().scheduleIn(
                _spec.perFrameProcessing, [this, &desc, frame] {
                _lastTxWireStart = host.simulation().now();
                ++txInFlight;
                tap->transmit(frame, [this, &desc](bool sent) {
                    // Status writeback.
                    desc.own = false;
                    desc.transmitted = sent;
                    desc.aborted = !sent;
                    if (sent)
                        ++_framesSent;
                    else
                        ++_txAborted;
                    if (desc.interruptOnComplete)
                        irq->assertLine();
                    --txInFlight;
                    txFetchNext();
                });
                // Prefetch the next frame while this one serializes.
                txFetching = false;
                txFetchNext();
            });
        });
    });
}

void
Dc21140::frameArrived(const eth::Frame &frame)
{
    // Perfect filtering: our unicast address or broadcast only.
    if (frame.dst != _address && !frame.dst.isBroadcast())
        return;

    RxDescriptor &desc = rxRing[_rxHead];
    if (!desc.own) {
        // No buffer posted: the frame is missed.
        ++_rxMissed;
        return;
    }

    auto bytes = frame.serialize();
    if (bytes.size() > desc.bufLength) {
        UNET_WARN("dc21140: ", bytes.size(), "-byte frame exceeds the ",
                  desc.bufLength, "-byte receive buffer; dropped");
        ++_rxMissed;
        return;
    }

    // Reception DMA is pipelined with the wire; charge the residual
    // plus the bus transaction for the tail of the frame.
    desc.own = false; // the NIC is filling it now
    _rxHead = (_rxHead + 1) % rxRing.size();
    host.simulation().scheduleIn(_spec.rxResidualDma,
                                 [this, &desc, bytes] {
        host.bus().dma(bytes.size() % 128 + 32, [this, &desc, bytes] {
            host.memory().write(desc.bufOffset, bytes);
            desc.complete = true;
            desc.frameLength = static_cast<std::uint32_t>(bytes.size());
            ++_framesRecv;
            irq->assertLine();
        });
    });
}

} // namespace unet::nic
