#include "sockets/udp_stack.hh"

#include "sim/logging.hh"

namespace unet::sockets {

namespace {

/** EtherType for our modeled IPv4. */
constexpr std::uint16_t etherTypeIp = 0x0800;

sim::Tick
checksumTime(const UdpStackSpec &spec, std::size_t bytes)
{
    return sim::serializationTime(static_cast<std::int64_t>(bytes),
                                  spec.checksumBytesPerSec * 8.0);
}

} // namespace

bool
Socket::sendTo(sim::Process &proc, eth::MacAddress dst_mac,
               std::uint16_t dst_port, std::span<const std::uint8_t> data)
{
    return stack.transmit(proc, *this, dst_mac, dst_port, data);
}

std::optional<Socket::Datagram>
Socket::recvFrom(sim::Process &proc, sim::Tick timeout)
{
    check::assertCaller(proc, "udp recvfrom");
    auto &cpu = stack._host.cpu();
    cpu.busy(proc, stack._spec.syscallCost);

    while (queue.empty()) {
        if (timeout == sim::maxTick) {
            proc.waitOn(readable);
        } else {
            sim::Tick before = proc.simulation().now();
            if (!proc.waitOn(readable, timeout) && queue.empty())
                return std::nullopt;
            timeout -= proc.simulation().now() - before;
            if (timeout < 0)
                timeout = 0;
        }
    }

    check::ContextGuard::Scope scope(bufGuard, "udp recvfrom pop");
    Datagram dg = std::move(queue.front());
    queue.pop_front();
    queuedBytes -= dg.data.size();

    // Copy from the socket buffer to user space.
    cpu.busy(proc, cpu.spec().memcpyTime(dg.data.size()));
    return dg;
}

UdpStack::UdpStack(host::Host &host, nic::Dc21140 &nic,
                   UdpStackSpec spec)
    : _host(host), _nic(nic), _spec(spec),
      _metrics(host.simulation().metrics(),
               host.simulation().metrics().uniquePrefix(
                   "host." + host.name() + ".sockets.udp"))
{
    txGuard.setLabel(host.name() + ".udp.txring");
    _metrics.counter("packetsSent", _sent);
    _metrics.counter("packetsDelivered", _delivered);
    _metrics.counter("noPortDrops", _noPort);

    const std::size_t mbuf_bytes = eth::Frame::headerBytes +
        eth::Frame::maxPayload;
    mbufOffset.resize(nic.txRingSize());
    for (auto &off : mbufOffset)
        off = host.memory().alloc(mbuf_bytes, 8);

    for (std::size_t i = 0; i < nic.rxRingSize(); ++i) {
        auto &desc = nic.rxDesc(i);
        desc.bufOffset = static_cast<std::uint32_t>(
            host.memory().alloc(nic.spec().rxBufferBytes, 8));
        desc.bufLength =
            static_cast<std::uint32_t>(nic.spec().rxBufferBytes);
        desc.own = true;
    }

    nic.interrupt().connect([this] { rxInterrupt(); });
}

Socket &
UdpStack::createSocket(const sim::Process *owner, std::uint16_t port)
{
    if (port == 0)
        port = nextEphemeral++;
    auto [it, inserted] = sockets.emplace(
        port, std::unique_ptr<Socket>(new Socket(*this, owner, port)));
    if (!inserted)
        UNET_FATAL("UDP port ", port, " already bound");
    it->second->bufGuard.bindOwner(owner);
    it->second->bufGuard.setLabel(_host.name() + ".udp.sock"
                                  + std::to_string(port) + ".rxbuf");
    _metrics.counter("socket." + std::to_string(port) + ".drops",
                     it->second->_drops);
    return *it->second;
}

bool
UdpStack::transmit(sim::Process &proc, Socket &socket,
                   eth::MacAddress dst_mac, std::uint16_t dst_port,
                   std::span<const std::uint8_t> data)
{
    if (data.size() > UdpStackSpec::maxPayload) {
        UNET_WARN("udp: ", data.size(), "-byte datagram exceeds one "
                  "frame; this model does not fragment");
        return false;
    }
    check::assertCaller(proc, "udp sendto");
    auto &cpu = _host.cpu();

    // sendto(2): syscall, copy to a kernel buffer, checksum, protocol
    // output processing, driver handoff. All on the host CPU.
    cpu.busy(proc, _spec.syscallCost);
    cpu.busy(proc, cpu.spec().memcpyTime(data.size()));
    cpu.busy(proc, checksumTime(_spec, data.size()));
    cpu.busy(proc, _spec.txProtocol + _spec.driverTx);

    // Descriptor claim through hand-off must not interleave with
    // another sender: no yields are permitted inside this scope.
    check::ContextGuard::Scope scope(txGuard, "udp tx descriptor");
    std::size_t slot = _nic.txTail();
    auto &ring_desc = _nic.txDesc(slot);
    if (ring_desc.own) {
        // Device backlog: ENOBUFS. (Real stacks block or drop here;
        // we drop, as 90s UDP did.)
        return false;
    }

    // Build ethernet + IP/UDP headers and the copied payload in the
    // kernel mbuf.
    std::vector<std::uint8_t> pkt;
    pkt.reserve(eth::Frame::headerBytes + UdpStackSpec::headerBytes +
                data.size());
    const auto &dst = dst_mac.raw();
    const auto &src = _nic.address().raw();
    pkt.insert(pkt.end(), dst.begin(), dst.end());
    pkt.insert(pkt.end(), src.begin(), src.end());
    pkt.push_back(etherTypeIp >> 8);
    pkt.push_back(etherTypeIp & 0xFF);
    // 20 bytes of IP header (contents unmodeled) + 8 of UDP.
    for (int i = 0; i < 20; ++i)
        pkt.push_back(0);
    pkt.push_back(static_cast<std::uint8_t>(socket._port >> 8));
    pkt.push_back(static_cast<std::uint8_t>(socket._port));
    pkt.push_back(static_cast<std::uint8_t>(dst_port >> 8));
    pkt.push_back(static_cast<std::uint8_t>(dst_port));
    std::uint16_t udp_len = static_cast<std::uint16_t>(8 + data.size());
    pkt.push_back(static_cast<std::uint8_t>(udp_len >> 8));
    pkt.push_back(static_cast<std::uint8_t>(udp_len));
    pkt.push_back(0); // checksum field (cost charged above)
    pkt.push_back(0);
    pkt.insert(pkt.end(), data.begin(), data.end());

    _host.memory().write(mbufOffset[slot], pkt);
    ring_desc.buf1Offset = static_cast<std::uint32_t>(mbufOffset[slot]);
    ring_desc.buf1Length = static_cast<std::uint32_t>(pkt.size());
    ring_desc.buf2Length = 0;
    ring_desc.transmitted = false;
    ring_desc.aborted = false;
    ring_desc.own = true;
    _nic.bumpTxTail();
    _nic.pollDemand();
    ++_sent;
    return true;
}

void
UdpStack::rxInterrupt()
{
    auto &cpu = _host.cpu();
    auto &mem = _host.memory();

    sim::Tick cost = _spec.driverRx;
    std::vector<std::function<void()>> effects;

    while (true) {
        auto &ring_desc = _nic.rxDesc(kernelRxHead);
        if (!ring_desc.complete)
            break;

        auto raw = mem.read(ring_desc.bufOffset, ring_desc.frameLength);
        ring_desc.complete = false;
        ring_desc.own = true;
        kernelRxHead = (kernelRxHead + 1) % _nic.rxRingSize();

        auto frame = eth::Frame::parse(raw);
        if (!frame || frame->etherType != etherTypeIp ||
            frame->payload.size() < UdpStackSpec::headerBytes)
            continue;

        cost += _spec.rxProtocol;
        std::uint16_t dst_port = static_cast<std::uint16_t>(
            (frame->payload[22] << 8) | frame->payload[23]);
        std::uint16_t src_port = static_cast<std::uint16_t>(
            (frame->payload[20] << 8) | frame->payload[21]);
        std::uint16_t udp_len = static_cast<std::uint16_t>(
            (frame->payload[24] << 8) | frame->payload[25]);
        if (udp_len < 8 ||
            20u + udp_len > frame->payload.size())
            continue;
        std::size_t data_len = udp_len - 8u;

        auto it = sockets.find(dst_port);
        if (it == sockets.end()) {
            ++_noPort;
            continue;
        }
        Socket *socket = it->second.get();

        cost += checksumTime(_spec, data_len);
        cost += cpu.spec().memcpyTime(data_len); // into the sockbuf

        Socket::Datagram dg;
        dg.srcMac = frame->src;
        dg.srcPort = src_port;
        dg.data.assign(
            frame->payload.begin() + UdpStackSpec::headerBytes,
            frame->payload.begin() + UdpStackSpec::headerBytes +
                static_cast<std::ptrdiff_t>(data_len));

        effects.push_back([this, socket, dg = std::move(dg)]() mutable {
            check::ContextGuard::Scope scope(socket->bufGuard,
                                             "udp rx deliver");
            if (socket->queuedBytes + dg.data.size() >
                _spec.socketBufferBytes) {
                ++socket->_drops;
                return;
            }
            socket->queuedBytes += dg.data.size();
            socket->queue.push_back(std::move(dg));
            ++_delivered;
            // Scheduler wakeup of a blocked reader.
            _host.simulation().scheduleIn(
                _spec.wakeupLatency,
                [socket] { socket->readable.notifyAll(); });
        });
    }

    cpu.runKernel(cost, [effects = std::move(effects)] {
        for (const auto &effect : effects)
            effect();
    });
}

} // namespace unet::sockets
