/**
 * @file
 * The baseline U-Net is measured against: traditional in-kernel
 * sockets.
 *
 * "U-Net circumvents the traditional UNIX networking architecture" —
 * this module *is* that traditional architecture, modeled on a
 * mid-90s BSD/Linux UDP path over the same DC21140 device: a full
 * system call per send/receive, a user/kernel copy on each side,
 * IP+UDP header processing and checksumming in the kernel, socket
 * buffers with drop-on-overflow, and a scheduler wakeup to unblock a
 * sleeping receiver. The Beowulf cluster in the paper's related work
 * ran exactly this stack ("all network access is through the kernel
 * sockets interface").
 *
 * The bench `baseline_sockets` puts this side by side with U-Net/FE
 * on identical hardware.
 */

#ifndef UNET_SOCKETS_UDP_STACK_HH
#define UNET_SOCKETS_UDP_STACK_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "check/access.hh"
#include "nic/dc21140.hh"
#include "obs/metrics.hh"
#include "sim/process.hh"

namespace unet::sockets {

/** Cost model of the in-kernel path (mid-90s Pentium/Linux class). */
struct UdpStackSpec
{
    /** Full system-call entry+exit (vs the sub-µs U-Net fast trap). */
    sim::Tick syscallCost = sim::microseconds(8);

    /** UDP/IP output processing: headers, routing, socket lookup. */
    sim::Tick txProtocol = sim::microseconds(14);

    /** IP input + UDP demultiplex on receive. */
    sim::Tick rxProtocol = sim::microseconds(18);

    /** Internet checksum touches every payload byte. */
    double checksumBytesPerSec = 150e6;

    /** Driver work to hand a packet to the DC21140. */
    sim::Tick driverTx = sim::microseconds(6);

    /** Driver work inside the receive interrupt. */
    sim::Tick driverRx = sim::microseconds(8);

    /** Scheduler latency to wake a process blocked in recvfrom(). */
    sim::Tick wakeupLatency = sim::microseconds(40);

    /** Per-socket receive buffer; overflow drops (UDP semantics). */
    std::size_t socketBufferBytes = 64 * 1024;

    /** IP (20) + UDP (8) header bytes per packet. */
    static constexpr std::size_t headerBytes = 28;

    /** Largest UDP payload in one Ethernet frame (no fragmentation). */
    static constexpr std::size_t maxPayload =
        eth::Frame::maxPayload - headerBytes;
};

class UdpStack;

/** A bound UDP socket. */
class Socket
{
  public:
    /** One received datagram. */
    struct Datagram
    {
        eth::MacAddress srcMac;
        std::uint16_t srcPort = 0;
        std::vector<std::uint8_t> data;
    };

    /**
     * sendto(2): blocking syscall; the payload is copied into a kernel
     * buffer and transmitted. @return false if the payload exceeds one
     * frame (this model does not fragment).
     */
    bool sendTo(sim::Process &proc, eth::MacAddress dst_mac,
                std::uint16_t dst_port,
                std::span<const std::uint8_t> data);

    /**
     * recvfrom(2): blocking syscall; waits for a datagram or times
     * out. @return the datagram, or std::nullopt on timeout.
     */
    std::optional<Datagram> recvFrom(sim::Process &proc,
                                     sim::Tick timeout = sim::maxTick);

    std::uint16_t port() const { return _port; }

    /** Datagrams dropped because the socket buffer was full. */
    std::uint64_t drops() const { return _drops.value(); }

  private:
    friend class UdpStack;

    Socket(UdpStack &stack, const sim::Process *owner,
           std::uint16_t port)
        : stack(stack), owner(owner), _port(port)
    {}

    UdpStack &stack;            // hb-exempt(reference, set once)
    const sim::Process *owner;  // hb-exempt(const after ctor)
    std::uint16_t _port;        // hb-exempt(const after ctor)
    std::deque<Datagram> queue; // hb-guarded(bufGuard)
    std::size_t queuedBytes = 0; // hb-guarded(bufGuard)
    sim::WaitChannel readable;  // hb-exempt(notify is a scheduler edge)
    sim::Counter _drops;        // hb-exempt(commutative metrics sink)

    /** Custody over the socket receive buffer (queue + queuedBytes):
     *  filled by the kernel rx path (event context), drained by the
     *  owning process in recvFrom. */
    check::ContextGuard bufGuard{"udp socket rx buffer"};
};

/** The per-host in-kernel UDP/IP stack driving a DC21140. */
class UdpStack
{
  public:
    UdpStack(host::Host &host, nic::Dc21140 &nic,
             UdpStackSpec spec = {});

    /** socket(2)+bind(2): create a socket on @p port (0 = ephemeral). */
    Socket &createSocket(const sim::Process *owner,
                         std::uint16_t port = 0);

    const UdpStackSpec &spec() const { return _spec; }
    host::Host &host() { return _host; }
    eth::MacAddress address() const { return _nic.address(); }

    /** @name Statistics. @{ */
    std::uint64_t packetsSent() const { return _sent.value(); }
    std::uint64_t packetsDelivered() const { return _delivered.value(); }
    std::uint64_t noPortDrops() const { return _noPort.value(); }
    /** @} */

  private:
    friend class Socket;

    /** The blocking sendto path (runs in the caller's context). */
    bool transmit(sim::Process &proc, Socket &socket,
                  eth::MacAddress dst_mac, std::uint16_t dst_port,
                  std::span<const std::uint8_t> data);

    /** DC21140 receive interrupt handler. */
    void rxInterrupt();

    host::Host &_host;          // hb-exempt(reference, set once)
    nic::Dc21140 &_nic;         // hb-exempt(reference, set once)
    UdpStackSpec _spec;         // hb-exempt(const after ctor)

    std::map<std::uint16_t, std::unique_ptr<Socket>> sockets; // hb-exempt(setup-time only)
    std::uint16_t nextEphemeral = 32768; // hb-exempt(setup-time only)

    /** Kernel packet buffers, one per TX ring slot. */
    std::vector<std::size_t> mbufOffset; // hb-guarded(txGuard)

    /** Custody over the TX descriptor claim/fill/hand-off sequence —
     *  shared by every socket on this stack, so it stays unbound; the
     *  Scope in transmit() catches any yield introduced mid-sequence. */
    check::ContextGuard txGuard{"udp kernel tx ring"};

    std::size_t kernelRxHead = 0; // hb-exempt(kernel rx path, one event chain)

    sim::Counter _sent;         // hb-exempt(commutative metrics sink)
    sim::Counter _delivered;    // hb-exempt(commutative metrics sink)
    sim::Counter _noPort;       // hb-exempt(commutative metrics sink)

    /** Declared after the counters (and sockets) it registers. */
    obs::MetricGroup _metrics;  // hb-exempt(registration RAII)
};

} // namespace unet::sockets

#endif // UNET_SOCKETS_UDP_STACK_HH
