#include "atm/link.hh"

#include "sim/logging.hh"

namespace unet::atm {

LinkSpec
LinkSpec::oc3()
{
    LinkSpec s;
    s.name = "OC-3c";
    // Chosen so the AAL5 payload ceiling is the paper's 138 Mbps:
    // 138e6 * 53/48 = 152.4e6 effective cell rate (155.52 line rate
    // minus SONET path overhead).
    s.cellRateBps = 152.4e6;
    return s;
}

LinkSpec
LinkSpec::taxi140()
{
    LinkSpec s;
    s.name = "TAXI-140";
    // "The maximum bandwidth here is 120 Mbps, which represents the
    // maximum achievable bandwidth for the 140 Mbps TAXI link":
    // 120e6 * 53/48 = 132.5e6 effective cell rate.
    s.cellRateBps = 132.5e6;
    return s;
}

class AtmLink::Side : public CellTap
{
  public:
    Side(AtmLink &link, int index) : link(link), index(index) {}

    void
    send(Cell cell, std::function<void()> on_done) override
    {
        auto &l = link;
        if (l.attached < 2)
            UNET_PANIC("cell sent on a link with ", l.attached,
                       " attachment(s)");
        sim::Tick start = std::max(l.sim.now(), l.busyUntil[index]);
        sim::Tick end = start + l._spec.cellTime();
        l.busyUntil[index] = end;

        CellSink *peer = l.sinks[1 - index];
        l.sim.schedule(end + l._spec.propDelay, [&l, peer, cell] {
            ++l._delivered;
            peer->cellArrived(cell);
        });
        if (on_done)
            l.sim.schedule(end, std::move(on_done));
    }

    sim::Tick
    nextFreeAt() const override
    {
        return std::max(link.sim.now(), link.busyUntil[index]) +
            link._spec.cellTime();
    }

  private:
    AtmLink &link;
    int index;
};

AtmLink::AtmLink(sim::Simulation &sim, LinkSpec spec)
    : sim(sim), _spec(std::move(spec))
{
    sides[0] = std::make_unique<Side>(*this, 0);
    sides[1] = std::make_unique<Side>(*this, 1);
}

AtmLink::~AtmLink() = default;

CellTap &
AtmLink::attach(CellSink &sink)
{
    if (attached >= 2)
        UNET_FATAL("ATM link already has two attachments");
    sinks[attached] = &sink;
    return *sides[attached++];
}

} // namespace unet::atm
