#include "atm/link.hh"

#include "fault/fault.hh"
#include "sim/logging.hh"
#include "sim/pool.hh"

namespace unet::atm {

void
CellTap::sendTrain(std::span<const Cell> cells,
                   std::function<void()> on_done)
{
    for (std::size_t i = 0; i < cells.size(); ++i)
        send(cells[i],
             i + 1 == cells.size() ? std::move(on_done)
                                   : std::function<void()>{});
}

LinkSpec
LinkSpec::oc3()
{
    LinkSpec s;
    s.name = "OC-3c";
    // Chosen so the AAL5 payload ceiling is the paper's 138 Mbps:
    // 138e6 * 53/48 = 152.4e6 effective cell rate (155.52 line rate
    // minus SONET path overhead).
    s.cellRateBps = 152.4e6;
    return s;
}

LinkSpec
LinkSpec::taxi140()
{
    LinkSpec s;
    s.name = "TAXI-140";
    // "The maximum bandwidth here is 120 Mbps, which represents the
    // maximum achievable bandwidth for the 140 Mbps TAXI link":
    // 120e6 * 53/48 = 132.5e6 effective cell rate.
    s.cellRateBps = 132.5e6;
    return s;
}

/**
 * One direction of the fiber. In-flight cells sit in a recycled ring —
 * no per-cell closure or allocation — and a single member event walks
 * their delivery boundaries: it fires at the head cell's arrival time,
 * delivers, and re-arms for the next cell. A back-to-back train of N
 * cells therefore has one pending event at any moment, not N.
 */
class AtmLink::Side : public CellTap
{
  public:
    Side(AtmLink &link, int index)
        : link(link), index(index),
          deliver(link.sim.events(), [this] { deliverDue(); })
    {}

    void
    send(const Cell &cell, std::function<void()> on_done) override
    {
        sim::Tick end = serialize(cell);
        if (on_done)
            link.sim.schedule(end, std::move(on_done));
    }

    void
    sendTrain(std::span<const Cell> cells,
              std::function<void()> on_done) override
    {
        sim::Tick end = link.sim.now();
        for (const Cell &cell : cells)
            end = serialize(cell);
        if (on_done)
            link.sim.schedule(end, std::move(on_done));
    }

    sim::Tick
    nextFreeAt() const override
    {
        return std::max(link.sim.now(), link.busyUntil[index]) +
            link._spec.cellTime();
    }

  private:
    struct InFlight
    {
        Cell cell;
        sim::Tick arrivesAt = 0;
    };

    /** Queue one cell on the wire; @return when it has left us. */
    sim::Tick
    serialize(const Cell &cell)
    {
        auto &l = link;
        if (l.attached < 2)
            UNET_PANIC("cell sent on a link with ", l.attached,
                       " attachment(s)");
        sim::Tick start = std::max(l.sim.now(), l.busyUntil[index]);
        sim::Tick end = start + l._spec.cellTime();
        l.busyUntil[index] = end;

        if (fault::Injector *inj = l.injectors[index]) {
            fault::Decision d = inj->decide(Cell::payloadBytes * 8);
            if (d.faulty()) {
                inj->stamp(cell.trace, d);
                if (d.drop)
                    return end; // occupied the fiber, never arrives
                sim::Tick arrives = end + l._spec.propDelay + d.delay;
                deliverFaulty(cell, arrives,
                              d.corrupt ? &d.corruptBit : nullptr);
                if (d.duplicate)
                    deliverFaulty(cell, arrives, nullptr);
                return end;
            }
        }

        InFlight &slot = inFlight.pushSlot();
        slot.cell = cell;
        slot.arrivesAt = end + l._spec.propDelay;
        if (!deliver.pending())
            deliver.scheduleAt(slot.arrivesAt);
        return end;
    }

    /** Carry one faulted cell to the peer (corrupt/dup/delay);
     *  bypasses the in-flight ring, whose deadline monotonicity a
     *  delayed cell would violate. Cell payload bits are real, so
     *  corruption flips one — AAL5's CRC-32 must catch it. */
    void
    deliverFaulty(const Cell &cell, sim::Tick arrives_at,
                  const std::uint32_t *corrupt_bit)
    {
        auto &l = link;
        Cell copy = cell;
        if (corrupt_bit)
            fault::flipBit(copy.payload, *corrupt_bit);
        l.sim.schedule(arrives_at, [this, copy] {
            auto &lk = link;
            ++lk._delivered;
            lk.sinks[1 - index]->cellArrived(copy);
        });
    }

    /** Deliver every cell whose boundary has been reached; re-arm. */
    void
    deliverDue()
    {
        auto &l = link;
        CellSink *peer = l.sinks[1 - index];
        while (!inFlight.empty() &&
               inFlight.front().arrivesAt <= l.sim.now()) {
            ++l._delivered;
            // Copy out: a reentrant send() could recycle the slot.
            Cell cell = inFlight.front().cell;
            inFlight.popFront();
            peer->cellArrived(cell);
        }
        if (!inFlight.empty())
            deliver.scheduleAt(inFlight.front().arrivesAt);
    }

    AtmLink &link;
    int index;
    sim::SlotRing<InFlight> inFlight;
    sim::MemberEvent deliver;
};

AtmLink::AtmLink(sim::Simulation &sim, LinkSpec spec)
    : sim(sim), _spec(std::move(spec)),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix("atm.link"))
{
    sides[0] = std::make_unique<Side>(*this, 0);
    sides[1] = std::make_unique<Side>(*this, 1);
    _metrics.counter("cellsDelivered", _delivered);
}

AtmLink::~AtmLink() = default;

CellTap &
AtmLink::attach(CellSink &sink)
{
    if (attached >= 2)
        UNET_FATAL("ATM link already has two attachments");
    sinks[attached] = &sink;
    return *sides[attached++];
}

} // namespace unet::atm
