/**
 * @file
 * AAL5 segmentation and reassembly.
 *
 * An AAL5 CS-PDU is the payload, zero padding, and an 8-byte trailer
 * (UU, CPI, 16-bit length, 32-bit CRC over the whole padded PDU), sized
 * to a multiple of 48 bytes and carried in consecutive cells on one VC;
 * the last cell is flagged via the PTI user bit. The PCA-200's i960
 * performs this in firmware with the CRC accumulated in hardware — in
 * this model the CRC is computed for real, so a corrupted cell genuinely
 * kills its PDU.
 */

#ifndef UNET_ATM_AAL5_HH
#define UNET_ATM_AAL5_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atm/cell.hh"

namespace unet::atm::aal5 {

/** Trailer size in bytes (UU + CPI + length + CRC-32). */
constexpr std::size_t trailerBytes = 8;

/** Maximum PDU payload (the paper: "the maximum packet size is
 *  65 KBytes", i.e. the AAL5 MTU). */
constexpr std::size_t maxPdu = 65535;

/** Number of cells needed to carry @p pdu_bytes of payload. */
constexpr std::size_t
cellCount(std::size_t pdu_bytes)
{
    return (pdu_bytes + trailerBytes + Cell::payloadBytes - 1) /
        Cell::payloadBytes;
}

/** Bytes on the wire (whole cells) for @p pdu_bytes of payload. */
constexpr std::size_t
wireBytes(std::size_t pdu_bytes)
{
    return cellCount(pdu_bytes) * Cell::cellBytes;
}

/**
 * Segment @p pdu into cells on @p vci, computing the real trailer CRC.
 * Panics if the PDU exceeds the AAL5 maximum.
 */
std::vector<Cell> segment(std::span<const std::uint8_t> pdu, Vci vci);

/**
 * segment() into @p out (resized to the cell count), reusing its
 * capacity — the allocation-free variant for per-message hot paths.
 */
void segmentInto(std::span<const std::uint8_t> pdu, Vci vci,
                 std::vector<Cell> &out);

/**
 * Per-VC reassembler.
 *
 * Feed cells in arrival order; when the end-of-PDU cell arrives the
 * accumulated CS-PDU is validated (CRC and length) and the payload is
 * returned. Corrupt or inconsistent PDUs are dropped and counted.
 */
class Reassembler
{
  public:
    /**
     * Add one cell.
     * @return the completed, validated PDU payload on the final cell;
     *         std::nullopt while in progress or when validation fails.
     */
    std::optional<std::vector<std::uint8_t>> addCell(const Cell &cell);

    /** Cells buffered for the in-progress PDU. */
    std::size_t cellsBuffered() const { return buffer.size() / 48; }

    /** PDUs discarded due to bad CRC or length. */
    std::uint64_t crcErrors() const { return _crcErrors; }

  private:
    std::vector<std::uint8_t> buffer;
    std::uint64_t _crcErrors = 0;
};

} // namespace unet::atm::aal5

#endif // UNET_ATM_AAL5_HH
