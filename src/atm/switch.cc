#include "atm/switch.hh"

#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::atm {

namespace {

constexpr std::uint32_t
routeKey(std::size_t port, Vci vci)
{
    return static_cast<std::uint32_t>(port << 16) | vci;
}

} // namespace

/** Switch-side attachment to one host link. */
struct Switch::Port : public CellSink
{
    Port(Switch &sw, std::size_t index) : sw(sw), index(index) {}

    void
    cellArrived(const Cell &cell) override
    {
        sw.cellIn(index, cell);
    }

    Switch &sw;
    std::size_t index;
    CellTap *tap = nullptr;

    /** Cells queued or serializing on the output side. */
    std::size_t outstanding = 0;
};

Switch::Switch(sim::Simulation &sim, SwitchSpec spec)
    : sim(sim), _spec(std::move(spec)),
      forwardEvent(sim.events(), [this] { forwardDue(); }),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix("atm.switch"))
{
    _metrics.counter("cellsForwarded", _forwarded);
    _metrics.counter("cellsUnroutable", _unroutable);
    _metrics.counter("cellsDropped", _dropped);
}

Switch::~Switch() = default;

std::size_t
Switch::addPort(AtmLink &link)
{
    auto port = std::make_unique<Port>(*this, ports.size());
    port->tap = &link.attach(*port);
    ports.push_back(std::move(port));
    return ports.size() - 1;
}

void
Switch::addRoute(std::size_t in_port, Vci in_vci, std::size_t out_port,
                 Vci out_vci)
{
    if (in_port >= ports.size() || out_port >= ports.size())
        UNET_FATAL("route references nonexistent port");
    auto [it, inserted] =
        routes.emplace(routeKey(in_port, in_vci),
                       std::make_pair(out_port, out_vci));
    if (!inserted)
        UNET_FATAL("duplicate route for port ", in_port, " VCI ", in_vci);
}

void
Switch::removeRoute(std::size_t in_port, Vci in_vci)
{
    routes.erase(routeKey(in_port, in_vci));
}

void
Switch::cellIn(std::size_t in_port, const Cell &cell)
{
    if (faultInjector) {
        fault::Decision d = faultInjector->decide(Cell::payloadBytes * 8);
        if (d.faulty()) {
            faultInjector->stamp(cell.trace, d);
            if (d.drop)
                return;
            Cell copy = cell;
            if (d.corrupt)
                fault::flipBit(copy.payload, d.corruptBit);
            int copies = d.duplicate ? 2 : 1;
            if (d.delay != 0) {
                // Re-enter routing later: cells behind overtake, and
                // the pipeline's nondecreasing readyAt contract holds
                // because the delayed routeIn runs at a later now.
                for (int c = 0; c < copies; ++c)
                    sim.scheduleIn(d.delay, [this, in_port, copy] {
                        routeIn(in_port, copy);
                    });
                return;
            }
            for (int c = 0; c < copies; ++c)
                routeIn(in_port, copy);
            return;
        }
    }
    routeIn(in_port, cell);
}

void
Switch::routeIn(std::size_t in_port, const Cell &cell)
{
    auto it = routes.find(routeKey(in_port, cell.vci));
    if (it == routes.end()) {
        ++_unroutable;
        UNET_WARN(_spec.name, ": no route for port ", in_port, " VCI ",
                  cell.vci, "; cell dropped");
        return;
    }
    auto [out_port, out_vci] = it->second;

    // Park the cell in the forwarding pipeline; one member event walks
    // the ready boundaries (readyAt is nondecreasing: same constant
    // delay, nondecreasing arrival times), replacing a closure per cell.
    PendingForward &slot = pipeline.pushSlot();
    slot.cell = cell;
    slot.cell.vci = out_vci;
    slot.outPort = out_port;
    slot.readyAt = sim.now() + _spec.forwardDelay;
    if (!forwardEvent.pending())
        forwardEvent.scheduleAt(slot.readyAt);
}

void
Switch::forwardDue()
{
    while (!pipeline.empty() && pipeline.front().readyAt <= sim.now()) {
        PendingForward &head = pipeline.front();
        Port &out = *ports[head.outPort];
        if (out.outstanding >= _spec.queueCells) {
            ++_dropped;
            pipeline.popFront();
            continue;
        }
        ++out.outstanding;
        ++_forwarded;
        // Copy out: the tap may deliver synchronously in degenerate
        // zero-delay configurations, and the sink could route a new
        // cell back through us, recycling the slot.
        Cell cell = head.cell;
        pipeline.popFront();
        out.tap->send(cell, [&out] { --out.outstanding; });
    }
    if (!pipeline.empty())
        forwardEvent.scheduleAt(pipeline.front().readyAt);
}

Vci
Signalling::allocate(std::size_t port)
{
    // VCIs 0-31 are reserved for signalling/management.
    auto [it, inserted] = nextVci.emplace(port, 32);
    (void)inserted;
    return it->second++;
}

Signalling::Vc
Signalling::connect(std::size_t port_a, std::size_t port_b)
{
    Vc vc{allocate(port_a), allocate(port_b)};
    sw.addRoute(port_a, vc.vciAtA, port_b, vc.vciAtB);
    sw.addRoute(port_b, vc.vciAtB, port_a, vc.vciAtA);
    return vc;
}

void
Signalling::disconnect(std::size_t port_a, std::size_t port_b, Vc vc)
{
    sw.removeRoute(port_a, vc.vciAtA);
    sw.removeRoute(port_b, vc.vciAtB);
}

} // namespace unet::atm
