#include "atm/aal5.hh"

#include <algorithm>

#include "net/crc32.hh"
#include "sim/logging.hh"

namespace unet::atm::aal5 {

std::vector<Cell>
segment(std::span<const std::uint8_t> pdu, Vci vci)
{
    std::vector<Cell> cells;
    segmentInto(pdu, vci, cells);
    return cells;
}

void
segmentInto(std::span<const std::uint8_t> pdu, Vci vci,
            std::vector<Cell> &out)
{
    if (pdu.size() > maxPdu)
        UNET_PANIC("AAL5 PDU of ", pdu.size(), " bytes exceeds the ",
                   maxPdu, "-byte maximum");

    // Build the CS-PDU — payload, pad, trailer — directly in the cell
    // payloads, accumulating the CRC incrementally instead of staging
    // the padded PDU in a scratch buffer.
    std::size_t n = cellCount(pdu.size());
    out.resize(n);
    std::size_t off = 0;
    for (std::size_t i = 0; i < n; ++i) {
        Cell &c = out[i];
        c.vci = vci;
        c.endOfPdu = (i == n - 1);
        std::size_t take = off < pdu.size()
            ? std::min<std::size_t>(pdu.size() - off, Cell::payloadBytes)
            : 0;
        std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(off), take,
                    c.payload.begin());
        std::fill(c.payload.begin() + static_cast<std::ptrdiff_t>(take),
                  c.payload.end(), 0);
        off += take;
    }

    Cell &last = out[n - 1];
    std::uint8_t *trailer =
        last.payload.data() + Cell::payloadBytes - trailerBytes;
    trailer[0] = 0; // CPCS-UU
    trailer[1] = 0; // CPI
    trailer[2] = static_cast<std::uint8_t>(pdu.size() >> 8);
    trailer[3] = static_cast<std::uint8_t>(pdu.size());
    // CRC over everything up to (not including) the CRC field itself.
    std::uint32_t state = 0xFFFFFFFFu;
    for (std::size_t i = 0; i + 1 < n; ++i)
        state = net::crc32Update(
            state, std::span(out[i].payload.data(), Cell::payloadBytes));
    state = net::crc32Update(
        state, std::span(last.payload.data(), Cell::payloadBytes - 4));
    std::uint32_t crc = net::crc32Finish(state);
    trailer[4] = static_cast<std::uint8_t>(crc >> 24);
    trailer[5] = static_cast<std::uint8_t>(crc >> 16);
    trailer[6] = static_cast<std::uint8_t>(crc >> 8);
    trailer[7] = static_cast<std::uint8_t>(crc);
}

std::optional<std::vector<std::uint8_t>>
Reassembler::addCell(const Cell &cell)
{
    buffer.insert(buffer.end(), cell.payload.begin(), cell.payload.end());
    if (!cell.endOfPdu)
        return std::nullopt;

    std::vector<std::uint8_t> cs;
    cs.swap(buffer);

    if (cs.size() < Cell::payloadBytes) {
        ++_crcErrors;
        return std::nullopt;
    }

    const std::uint8_t *trailer = cs.data() + cs.size() - trailerBytes;
    std::size_t length = (static_cast<std::size_t>(trailer[2]) << 8) |
        trailer[3];
    std::uint32_t want =
        (static_cast<std::uint32_t>(trailer[4]) << 24) |
        (static_cast<std::uint32_t>(trailer[5]) << 16) |
        (static_cast<std::uint32_t>(trailer[6]) << 8) |
        trailer[7];
    std::uint32_t got =
        net::crc32(std::span(cs.data(), cs.size() - 4));

    // Length must fit in the cells received (pad < one cell + trailer).
    bool length_ok = length + trailerBytes <= cs.size() &&
        length + trailerBytes + Cell::payloadBytes > cs.size();

    if (want != got || !length_ok) {
        ++_crcErrors;
        return std::nullopt;
    }

    cs.resize(length);
    return cs;
}

} // namespace unet::atm::aal5
