#include "atm/fabric.hh"

#include <deque>

#include "sim/logging.hh"

namespace unet::atm {

std::size_t
Fabric::addSwitch(SwitchSpec spec)
{
    switches.push_back(std::make_unique<Switch>(sim, std::move(spec)));
    return switches.size() - 1;
}

void
Fabric::addTrunk(std::size_t sw_a, std::size_t sw_b, LinkSpec link_spec)
{
    if (sw_a >= switches.size() || sw_b >= switches.size())
        UNET_FATAL("trunk references nonexistent switch");
    if (sw_a == sw_b)
        UNET_FATAL("trunk endpoints must differ");
    Trunk trunk;
    trunk.swA = sw_a;
    trunk.swB = sw_b;
    trunk.link = std::make_unique<AtmLink>(sim, std::move(link_spec));
    trunk.portAtA = switches[sw_a]->addPort(*trunk.link);
    trunk.portAtB = switches[sw_b]->addPort(*trunk.link);
    trunks.push_back(std::move(trunk));
}

Fabric::HostAttachment
Fabric::attachHost(std::size_t sw, AtmLink &host_link)
{
    if (sw >= switches.size())
        UNET_FATAL("attachment references nonexistent switch");
    return {sw, switches[sw]->addPort(host_link)};
}

Vci
Fabric::allocateVci(std::size_t trunk_index)
{
    auto [it, inserted] = nextVci.emplace(trunk_index, 32);
    (void)inserted;
    return it->second++;
}

Vci
Fabric::allocateHostVci(const HostAttachment &at)
{
    auto key = at.switchIndex * 65536 + at.port;
    auto [it, inserted] = nextHostVci.emplace(key, 32);
    (void)inserted;
    return it->second++;
}

std::vector<std::size_t>
Fabric::findPath(std::size_t sw_a, std::size_t sw_b) const
{
    // BFS over switches; parent[i] = trunk index used to reach i.
    std::vector<int> parent(switches.size(), -1);
    std::vector<bool> seen(switches.size(), false);
    std::deque<std::size_t> frontier{sw_a};
    seen[sw_a] = true;

    while (!frontier.empty() && !seen[sw_b]) {
        std::size_t sw = frontier.front();
        frontier.pop_front();
        for (std::size_t t = 0; t < trunks.size(); ++t) {
            const Trunk &trunk = trunks[t];
            std::size_t peer;
            if (trunk.swA == sw)
                peer = trunk.swB;
            else if (trunk.swB == sw)
                peer = trunk.swA;
            else
                continue;
            if (seen[peer])
                continue;
            seen[peer] = true;
            parent[peer] = static_cast<int>(t);
            frontier.push_back(peer);
        }
    }
    if (sw_a != sw_b && !seen[sw_b])
        UNET_FATAL("no trunk path between switches ", sw_a, " and ",
                   sw_b);

    std::vector<std::size_t> path;
    for (std::size_t sw = sw_b; sw != sw_a;) {
        auto t = static_cast<std::size_t>(parent[sw]);
        path.push_back(t);
        sw = trunks[t].swA == sw ? trunks[t].swB : trunks[t].swA;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

Fabric::Vc
Fabric::connect(HostAttachment a, HostAttachment b)
{
    std::vector<std::size_t> path = findPath(a.switchIndex,
                                             b.switchIndex);

    // Per-hop state walking from a's switch toward b's: the link we
    // arrived on (key + VCI + ingress port at the current switch).
    Vci vci_in = allocateHostVci(a); // a's host link
    Vci vci_at_a = vci_in;
    std::size_t port_in = a.port;
    std::size_t sw = a.switchIndex;

    for (std::size_t t : path) {
        const Trunk &trunk = trunks[t];
        bool forward = trunk.swA == sw;
        std::size_t port_out = forward ? trunk.portAtA : trunk.portAtB;
        std::size_t next_sw = forward ? trunk.swB : trunk.swA;
        std::size_t next_in = forward ? trunk.portAtB : trunk.portAtA;

        Vci vci_out = allocateVci(t);
        switches[sw]->addRoute(port_in, vci_in, port_out, vci_out);
        switches[sw]->addRoute(port_out, vci_out, port_in, vci_in);

        vci_in = vci_out;
        port_in = next_in;
        sw = next_sw;
    }

    // Final hop onto b's host link.
    Vci vci_at_b = allocateHostVci(b);
    switches[sw]->addRoute(port_in, vci_in, b.port, vci_at_b);
    switches[sw]->addRoute(b.port, vci_at_b, port_in, vci_in);

    return {vci_at_a, vci_at_b};
}

} // namespace unet::atm
