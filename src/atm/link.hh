/**
 * @file
 * ATM fiber links.
 *
 * Links carry cells point-to-point, full duplex, at an *effective* cell
 * bit-rate that folds in the physical layer's framing overhead:
 *
 *  - OC-3c SONET: 155.52 Mbps line rate, but SONET framing plus the
 *    5-byte cell header cap AAL5 payload throughput at ~138 Mbps
 *    ("the maximum bandwidth of the link is not 155 Mbps, but rather
 *    138 Mbps").
 *  - 140 Mbps TAXI: the SBA-200-era fiber interface; the paper measures
 *    at most 120 Mbps of payload through it.
 */

#ifndef UNET_ATM_LINK_HH
#define UNET_ATM_LINK_HH

#include <array>
#include <memory>
#include <span>
#include <string>

#include "atm/cell.hh"
#include "fault/fwd.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::atm {

/** Receiver side of an ATM device. */
class CellSink
{
  public:
    virtual ~CellSink() = default;

    /** A cell has fully arrived at this device. */
    virtual void cellArrived(const Cell &cell) = 0;
};

/** Physical-layer description. */
struct LinkSpec
{
    std::string name = "atm-link";

    /** Effective bit rate at which 53-byte cells serialize. */
    double cellRateBps = 155.52e6;

    /** One-way propagation delay. */
    sim::Tick propDelay = sim::nanoseconds(500);

    /** Serialization time of one cell. */
    sim::Tick
    cellTime() const
    {
        return sim::serializationTime(Cell::cellBytes, cellRateBps);
    }

    /** AAL5 payload throughput ceiling in bits/second. */
    double
    payloadCeilingBps() const
    {
        return cellRateBps * Cell::payloadBytes / Cell::cellBytes;
    }

    /** OC-3c SONET (the PCA-200 measurements in Fig. 5). */
    static LinkSpec oc3();

    /** 140 Mbps TAXI (the SBA-200 cluster and the Fig. 6 ceiling). */
    static LinkSpec taxi140();
};

/** Transmit handle one attached device gets. */
class CellTap
{
  public:
    virtual ~CellTap() = default;

    /**
     * Send one cell; cells queue behind each other at the link's cell
     * rate. @p on_done fires when the cell has left this station.
     */
    virtual void send(const Cell &cell,
                      std::function<void()> on_done = {}) = 0;

    /**
     * Send a contiguous back-to-back cell train. Timing-equivalent to
     * calling send() once per cell at the current tick — each cell
     * serializes at its own boundary and arrives separately — but the
     * whole train is covered by one pending delivery event instead of
     * one per cell, and @p on_done fires once, when the last cell has
     * left this station. The default implementation loops over send().
     */
    virtual void sendTrain(std::span<const Cell> cells,
                           std::function<void()> on_done = {});

    /** When a cell submitted now would finish serializing. */
    virtual sim::Tick nextFreeAt() const = 0;
};

/** A bidirectional fiber pair between two devices. */
class AtmLink
{
  public:
    AtmLink(sim::Simulation &sim, LinkSpec spec = {});
    ~AtmLink();

    /** Attach a device (maximum two). */
    CellTap &attach(CellSink &sink);

    const LinkSpec &spec() const { return _spec; }

    std::uint64_t cellsDelivered() const { return _delivered.value(); }

    /**
     * Fault plane: interpose @p inj on cells sent by attachment
     * @p direction (0 = first attached; -1 = both). Null detaches;
     * an absent injector costs one pointer test per cell.
     */
    void
    setFaultInjector(fault::Injector *inj, int direction = -1)
    {
        if (direction < 0)
            injectors[0] = injectors[1] = inj;
        else
            injectors[static_cast<std::size_t>(direction) % 2] = inj;
    }

  private:
    class Side;

    sim::Simulation &sim;
    LinkSpec _spec;
    std::array<CellSink *, 2> sinks{};
    std::array<std::unique_ptr<Side>, 2> sides;
    std::array<fault::Injector *, 2> injectors{};
    std::array<sim::Tick, 2> busyUntil{};
    int attached = 0;
    sim::Counter _delivered;

    /** Declared after the counter it registers. */
    obs::MetricGroup _metrics;
};

} // namespace unet::atm

#endif // UNET_ATM_LINK_HH
