/**
 * @file
 * ATM cell switch (FORE ASX-200 class).
 *
 * The switch routes cells by (input port, VCI), rewriting the VCI for
 * the output link. The paper's ASX-200 "forwards cells in about 7 us";
 * that figure is the per-cell forwarding latency here. Cells are
 * pipelined: forwarding latency applies per cell, output serialization
 * is the occupancy. Output contention queues cells; overflow drops
 * them (AAL5 loses the whole PDU, which the Active Message layer
 * recovers by retransmission).
 */

#ifndef UNET_ATM_SWITCH_HH
#define UNET_ATM_SWITCH_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "atm/cell.hh"
#include "atm/link.hh"
#include "fault/fwd.hh"
#include "obs/metrics.hh"
#include "sim/pool.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace unet::atm {

/** Static description of a cell switch. */
struct SwitchSpec
{
    std::string name = "ASX-200";

    /** Per-cell forwarding latency (lookup + fabric). */
    sim::Tick forwardDelay = sim::microseconds(7);

    /** Output buffering per port, in cells. */
    std::size_t queueCells = 1024;

    static SwitchSpec
    asx200()
    {
        return {};
    }
};

/** A VCI-routing cell switch. */
class Switch
{
  public:
    Switch(sim::Simulation &sim, SwitchSpec spec = SwitchSpec::asx200());
    ~Switch();

    /**
     * Attach the switch to one side of @p link (the host NIC takes the
     * other side). @return the new port's index.
     */
    std::size_t addPort(AtmLink &link);

    /**
     * Install a unidirectional route: cells arriving on
     * (@p in_port, @p in_vci) leave on @p out_port carrying @p out_vci.
     */
    void addRoute(std::size_t in_port, Vci in_vci, std::size_t out_port,
                  Vci out_vci);

    /** Remove a route (VC teardown). */
    void removeRoute(std::size_t in_port, Vci in_vci);

    std::size_t portCount() const { return ports.size(); }
    const SwitchSpec &spec() const { return _spec; }

    /** @name Statistics. @{ */
    std::uint64_t cellsForwarded() const { return _forwarded.value(); }
    std::uint64_t cellsUnroutable() const { return _unroutable.value(); }
    std::uint64_t cellsDropped() const { return _dropped.value(); }
    /** @} */

    /** Fault plane: one decision per ingress cell. Null detaches. */
    void setFaultInjector(fault::Injector *inj) { faultInjector = inj; }

  private:
    struct Port;

    /** A routed cell traversing the forwarding pipeline. */
    struct PendingForward
    {
        Cell cell;
        std::size_t outPort = 0;
        sim::Tick readyAt = 0;
    };

    /** A cell arrived from the link on @p in_port (fault decision
     *  point). */
    void cellIn(std::size_t in_port, const Cell &cell);

    /** Route the cell into the forwarding pipeline. */
    void routeIn(std::size_t in_port, const Cell &cell);

    /** Emit every pipelined cell whose forwarding delay has elapsed. */
    void forwardDue();

    sim::Simulation &sim;
    SwitchSpec _spec;
    std::vector<std::unique_ptr<Port>> ports;

    /** Cells in the forwarding pipeline: a recycled ring walked by one
     *  member event instead of a closure per cell. */
    sim::SlotRing<PendingForward> pipeline;
    sim::MemberEvent forwardEvent;

    fault::Injector *faultInjector = nullptr;

    /** (port << 16 | vci) -> (out port, out vci). */
    std::map<std::uint32_t, std::pair<std::size_t, Vci>> routes;

    sim::Counter _forwarded;
    sim::Counter _unroutable;
    sim::Counter _dropped;

    /** Declared after the counters it registers. */
    obs::MetricGroup _metrics;
};

/**
 * VC setup for a single-switch star — the OS-mediated "signalling tasks
 * that are specific to the network technology" the paper delegates to
 * an operating system service.
 */
class Signalling
{
  public:
    explicit Signalling(Switch &sw) : sw(sw) {}

    /** The two half-channels of a full-duplex VC. */
    struct Vc
    {
        /** VCI used by the host on port A (both to send and receive). */
        Vci vciAtA;
        /** VCI used by the host on port B. */
        Vci vciAtB;
    };

    /**
     * Establish a full-duplex VC between two switch ports, allocating a
     * fresh VCI on each and installing both routes.
     */
    Vc connect(std::size_t port_a, std::size_t port_b);

    /** Tear the VC down again. */
    void disconnect(std::size_t port_a, std::size_t port_b, Vc vc);

  private:
    Vci allocate(std::size_t port);

    Switch &sw;
    std::map<std::size_t, Vci> nextVci;
};

} // namespace unet::atm

#endif // UNET_ATM_SWITCH_HH
