/**
 * @file
 * Multi-switch ATM fabrics.
 *
 * The paper's scalability argument for ATM: "U-Net/ATM does not suffer
 * this problem as virtual circuits are established network-wide."
 * A Fabric is a graph of cell switches joined by trunk links; connect()
 * finds a path and installs VCI-rewrite routes hop by hop, so hosts on
 * different switches get end-to-end virtual circuits — something the
 * MAC+port tags of U-Net/FE cannot do across routers.
 */

#ifndef UNET_ATM_FABRIC_HH
#define UNET_ATM_FABRIC_HH

#include <map>
#include <memory>
#include <vector>

#include "atm/switch.hh"

namespace unet::atm {

/** A routed mesh of ATM switches. */
class Fabric
{
  public:
    explicit Fabric(sim::Simulation &sim) : sim(sim) {}

    /** Add a switch. @return its index. */
    std::size_t addSwitch(SwitchSpec spec = SwitchSpec::asx200());

    /** Join two switches with a trunk link. */
    void addTrunk(std::size_t sw_a, std::size_t sw_b,
                  LinkSpec link_spec = LinkSpec::oc3());

    /** Where a host hangs off the fabric. */
    struct HostAttachment
    {
        std::size_t switchIndex = 0;
        std::size_t port = 0;
    };

    /** Attach a host's link to switch @p sw. */
    HostAttachment attachHost(std::size_t sw, AtmLink &host_link);

    /** The two half-channel VCIs of an established VC. */
    struct Vc
    {
        Vci vciAtA;
        Vci vciAtB;
    };

    /**
     * Establish a full-duplex VC between two attachments, routing
     * across trunks (BFS shortest path). Fatal if no path exists.
     */
    Vc connect(HostAttachment a, HostAttachment b);

    Switch &switchAt(std::size_t i) { return *switches.at(i); }
    std::size_t switchCount() const { return switches.size(); }

  private:
    struct Trunk
    {
        std::size_t swA, swB;
        std::size_t portAtA, portAtB;
        std::unique_ptr<AtmLink> link;
    };

    /** Allocate the next VCI on a trunk link (VCIs are per-link, shared
     *  by both directions of a VC, 0-31 reserved). */
    Vci allocateVci(std::size_t trunk_index);

    /** Allocate the next VCI on a host attachment's link. */
    Vci allocateHostVci(const HostAttachment &at);

    /** BFS path of trunk indices from sw_a to sw_b. */
    std::vector<std::size_t> findPath(std::size_t sw_a,
                                      std::size_t sw_b) const;

    sim::Simulation &sim;
    std::vector<std::unique_ptr<Switch>> switches;
    std::vector<Trunk> trunks;
    /** Per-trunk VCI counters, keyed by trunk index (stable integral
     *  key — link addresses vary across perturbation salts). */
    std::map<std::size_t, Vci> nextVci;
    std::map<std::size_t, Vci> nextHostVci;
};

} // namespace unet::atm

#endif // UNET_ATM_FABRIC_HH
