/**
 * @file
 * ATM cells.
 *
 * A cell is a 5-byte header plus 48 bytes of payload. The model carries
 * the fields U-Net needs: the virtual channel identifier (the U-Net/ATM
 * message tag) and the AAL5 end-of-PDU marker (the PTI user bit). The
 * payload is real bytes — AAL5 reassembly and its CRC operate on them.
 */

#ifndef UNET_ATM_CELL_HH
#define UNET_ATM_CELL_HH

#include <array>
#include <cstdint>

#include "obs/trace_ctx.hh"

namespace unet::atm {

/** A virtual channel identifier. */
using Vci = std::uint16_t;

/** One 53-byte ATM cell. */
struct Cell
{
    static constexpr std::size_t payloadBytes = 48;
    static constexpr std::size_t headerBytes = 5;
    static constexpr std::size_t cellBytes = 53;

    /** Virtual channel this cell travels on. */
    Vci vci = 0;

    /** PTI user bit: set on the final cell of an AAL5 PDU. */
    bool endOfPdu = false;

    /** The 48 payload bytes. */
    std::array<std::uint8_t, payloadBytes> payload{};

    /** Message-trace custody state; set on the last cell of a PDU only
     *  (model metadata, not part of the 53 wire bytes). */
    obs::TraceContext trace;
};

} // namespace unet::atm

#endif // UNET_ATM_CELL_HH
