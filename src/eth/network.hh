/**
 * @file
 * Attachment interfaces between NICs and Ethernet media.
 *
 * A NIC implements Station to receive frames. Attaching to a Network
 * (point-to-point link, shared hub segment, or switch) yields a Tap the
 * NIC transmits through. The medium owns all timing: serialization at
 * line rate, propagation, CSMA/CD deferral and collisions, and switch
 * queueing. The transmit callback reports success (frame left the wire)
 * or failure (excessive collisions — 16 attempts on real hardware).
 */

#ifndef UNET_ETH_NETWORK_HH
#define UNET_ETH_NETWORK_HH

#include <functional>

#include "eth/frame.hh"

namespace unet::eth {

/** Receiver side of a NIC. */
class Station
{
  public:
    virtual ~Station() = default;

    /** A frame has fully arrived at this station. */
    virtual void frameArrived(const Frame &frame) = 0;
};

/** Completion callback: @c true if sent, @c false if dropped. */
using TxCallback = std::function<void(bool sent)>;

/** Transmit handle a NIC gets when it attaches to a medium. */
class Tap
{
  public:
    virtual ~Tap() = default;

    /**
     * Begin transmitting @p frame. @p on_done fires when the frame has
     * fully left this station (or the attempt was abandoned). Callers
     * must not start a second transmit before the first completes; the
     * DC21140 model serializes its own TX ring. The medium copies the
     * frame into pooled in-flight storage before returning, so the
     * caller may reuse its frame object immediately.
     */
    virtual void transmit(const Frame &frame, TxCallback on_done) = 0;
};

/** Anything a station can be plugged into. */
class Network
{
  public:
    virtual ~Network() = default;

    /** Attach @p station; the returned tap is owned by the network. */
    virtual Tap &attach(Station &station) = 0;
};

} // namespace unet::eth

#endif // UNET_ETH_NETWORK_HH
