/**
 * @file
 * 48-bit IEEE 802 MAC addresses.
 *
 * In U-Net/FE a message tag is the pair (MAC address, one-byte U-Net
 * port ID); the MAC address routes the frame to the right interface and
 * the port ID demultiplexes to the endpoint.
 */

#ifndef UNET_ETH_MAC_ADDRESS_HH
#define UNET_ETH_MAC_ADDRESS_HH

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace unet::eth {

/** A 48-bit Ethernet hardware address. */
class MacAddress
{
  public:
    /** The all-zero address (invalid / unset). */
    constexpr MacAddress() = default;

    constexpr explicit MacAddress(std::array<std::uint8_t, 6> b)
        : bytes(b)
    {}

    /** Build a locally-administered unicast address from an index. */
    static MacAddress
    fromIndex(std::uint32_t index)
    {
        return MacAddress({0x02, 0x00,
                           static_cast<std::uint8_t>(index >> 24),
                           static_cast<std::uint8_t>(index >> 16),
                           static_cast<std::uint8_t>(index >> 8),
                           static_cast<std::uint8_t>(index)});
    }

    /** Parse "aa:bb:cc:dd:ee:ff"; fatal on malformed input. */
    static MacAddress fromString(const std::string &text);

    /** The broadcast address ff:ff:ff:ff:ff:ff. */
    static constexpr MacAddress
    broadcast()
    {
        return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
    }

    bool
    isBroadcast() const
    {
        return *this == broadcast();
    }

    bool
    isMulticast() const
    {
        return (bytes[0] & 0x01) != 0;
    }

    std::string toString() const;

    const std::array<std::uint8_t, 6> &raw() const { return bytes; }

    /** Pack into the low 48 bits of a 64-bit integer (for map keys). */
    std::uint64_t
    toU64() const
    {
        std::uint64_t v = 0;
        for (auto b : bytes)
            v = (v << 8) | b;
        return v;
    }

    auto operator<=>(const MacAddress &) const = default;

  private:
    std::array<std::uint8_t, 6> bytes{};
};

} // namespace unet::eth

#endif // UNET_ETH_MAC_ADDRESS_HH
