/**
 * @file
 * Store-and-forward Fast Ethernet switch.
 *
 * Each attached station gets a dedicated segment (full-duplex by
 * default, so send and receive never contend — the configuration the
 * paper used for the Split-C cluster). The switch learns source MAC
 * addresses, forwards known-unicast frames to one port, floods unknown
 * and broadcast destinations, and queues frames per output port.
 *
 * Two presets model the paper's hardware: the Bay Networks 28115
 * (16 ports, fast fabric) and the Cabletron FastNet-100 (8 ports,
 * slower fabric — Fig. 5 shows it adding ~17 us to the 40-byte RTT
 * versus the hub).
 */

#ifndef UNET_ETH_SWITCH_HH
#define UNET_ETH_SWITCH_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eth/network.hh"
#include "fault/fwd.hh"
#include "obs/metrics.hh"
#include "sim/pool.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::eth {

/** Static description of a switch model. */
struct SwitchSpec
{
    std::string name = "generic-switch";

    /** Port line rate in bits/second. */
    double bitRate = 100e6;

    /** Lookup + fabric latency from full reception to queueing. */
    sim::Tick forwardLatency = sim::microseconds(3);

    /**
     * Cut-through forwarding: when the output port is idle, the frame
     * starts leaving as soon as the header has been inspected, so the
     * added latency is ~header time + fabric latency instead of a full
     * re-serialization. Falls back to store-and-forward under output
     * contention. (The Bay 28115 cuts through; the FN100 does not —
     * which is why Fig. 5 shows it so much slower.)
     */
    bool cutThrough = false;

    /** Output-trails-input lag when cutting through. */
    sim::Tick cutThroughLag = sim::microsecondsF(1.2);

    /** Output queue capacity in frames; overflow drops. */
    std::size_t queueFrames = 128;

    /** Dedicated segments run full duplex. */
    bool fullDuplex = true;

    /** One-way propagation on each segment. */
    sim::Tick propDelay = sim::nanoseconds(500);

    /** Maximum number of ports (0 = unlimited). */
    std::size_t maxPorts = 0;

    /** Bay Networks 28115 16-port switch. */
    static SwitchSpec bay28115();

    /** Cabletron FastNet-100 8-port switch. */
    static SwitchSpec fn100();
};

/** A learning store-and-forward switch. */
class Switch : public Network
{
  public:
    Switch(sim::Simulation &sim, SwitchSpec spec = {});
    ~Switch() override;

    Tap &attach(Station &station) override;

    const SwitchSpec &spec() const { return _spec; }

    /** @name Statistics (also in the registry under eth.switch.*). @{ */
    std::uint64_t framesForwarded() const { return _forwarded.value(); }
    std::uint64_t framesFlooded() const { return _flooded.value(); }
    std::size_t learnedAddresses() const { return macTable.size(); }
    /** @} */

    /** Fault plane: one decision per egress-queued frame (flooded
     *  frames are decided per output port). Null detaches. */
    void setFaultInjector(fault::Injector *inj) { faultInjector = inj; }

  private:
    struct Port;
    class PortTap;

    /** A complete frame arrived at the switch on @p in_port. */
    void frameIn(std::size_t in_port, const Frame &frame);

    /** Queue @p frame for transmission out of @p out_port (fault
     *  decision point). */
    void enqueue(std::size_t out_port, const Frame &frame);

    /** The queueing itself, past the fault plane. */
    void enqueueDirect(std::size_t out_port, const Frame &frame);

    /** A frame plus the time it finished arriving (cut-through is only
     *  legal while the tail is still "fresh"). */
    struct QueuedFrame
    {
        Frame frame;
        sim::Tick arrived = 0;
    };

    /** A received frame waiting out the lookup/fabric latency. */
    struct PendingLookup
    {
        Frame frame;
        std::size_t inPort = 0;
        sim::Tick readyAt = 0;
    };

    /** Route every frame whose forwarding latency has elapsed. */
    void lookupDue();

    /** Deliver uplink frames that have fully arrived on @p port. */
    void uplinkDue(std::size_t port);

    /** The frame on @p out_port's downlink reached the station. */
    void downlinkDue(std::size_t out_port);

    /** Start transmitting the head of @p out_port's queue if idle. */
    void pump(std::size_t out_port);

    sim::Simulation &sim;
    SwitchSpec _spec;
    std::vector<std::unique_ptr<Port>> ports;
    std::map<std::uint64_t, std::size_t> macTable;

    /** Frames traversing the lookup/fabric stage: a recycled ring
     *  walked by one member event instead of a closure per frame. */
    sim::SlotRing<PendingLookup> lookups;
    sim::MemberEvent lookupEvent;

    fault::Injector *faultInjector = nullptr;

    sim::Counter _forwarded;
    sim::Counter _flooded;
    sim::Counter _dropped;

    /** Declared after the counters it registers. */
    obs::MetricGroup _metrics;
};

} // namespace unet::eth

#endif // UNET_ETH_SWITCH_HH
