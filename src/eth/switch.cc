#include "eth/switch.hh"

#include "check/hb/auditor.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::eth {

using namespace sim::literals;

SwitchSpec
SwitchSpec::bay28115()
{
    SwitchSpec s;
    s.name = "Bay-28115";
    s.forwardLatency = 3_us;
    s.cutThrough = true;
    s.maxPorts = 16;
    return s;
}

SwitchSpec
SwitchSpec::fn100()
{
    SwitchSpec s;
    s.name = "Cabletron-FN100";
    // Fig. 5: the FN100 adds ~34 us to the 40-byte round trip versus the
    // hub; store-and-forward re-serialization accounts for ~2x4.8 us,
    // the rest is fabric latency.
    s.forwardLatency = 12_us;
    s.maxPorts = 8;
    return s;
}

/**
 * One switch port: the dedicated segment to its station plus the
 * output queue for the switch->station direction. In-flight frames in
 * both directions sit in recycled rings (payload capacity reused)
 * walked by member events — no per-frame heap traffic.
 */
struct Switch::Port
{
    Port(Switch &sw, std::size_t index)
        : uplinkDeliver(sw.sim.events(),
                        [&sw, index] { sw.uplinkDue(index); }),
          downlinkDeliver(sw.sim.events(),
                          [&sw, index] { sw.downlinkDue(index); })
    {}

    Station *station = nullptr;
    std::unique_ptr<PortTap> tap;

    /** Station->switch channel occupancy (shared if half duplex). */
    sim::Tick uplinkBusyUntil = 0;

    /** Switch->station channel occupancy. */
    sim::Tick downlinkBusyUntil = 0;

    /** A frame in flight from the station toward the switch. */
    struct InFlight
    {
        Frame frame;
        sim::Tick arrivesAt = 0;
    };

    sim::SlotRing<InFlight> uplink;
    sim::MemberEvent uplinkDeliver;

    /** Frames waiting for the downlink. */
    sim::SlotRing<Switch::QueuedFrame> queue;

    /** The frame currently on the downlink wire. */
    Frame txFrame;
    sim::MemberEvent downlinkDeliver;

    bool pumping = false;
};

/** Station-side transmit handle for one port. */
class Switch::PortTap : public Tap
{
  public:
    PortTap(Switch &sw, std::size_t index) : sw(sw), index(index) {}

    void
    transmit(const Frame &frame, TxCallback on_done) override
    {
        auto &port = *sw.ports[index];
        sim::Tick ser = sim::serializationTime(
            static_cast<std::int64_t>(frame.wireBytes()),
            sw._spec.bitRate);

        // Half-duplex segments share the channel with the downlink; we
        // model polite deferral (collisions on a two-station segment are
        // rare and retry quickly, so deferral captures the cost).
        sim::Tick start = std::max(sw.sim.now(), port.uplinkBusyUntil);
        if (!sw._spec.fullDuplex)
            start = std::max(start, port.downlinkBusyUntil);
        sim::Tick end = start + ser;
        port.uplinkBusyUntil = end;
        if (!sw._spec.fullDuplex)
            port.downlinkBusyUntil = end;

        auto &slot = port.uplink.pushSlot();
        slot.frame = frame;
        slot.arrivesAt = end + sw._spec.propDelay;
        if (!port.uplinkDeliver.pending())
            port.uplinkDeliver.scheduleAt(slot.arrivesAt);

        if (on_done)
            sw.sim.schedule(end,
                            [cb = std::move(on_done)] { cb(true); });
    }

  private:
    Switch &sw;
    std::size_t index;
};

Switch::Switch(sim::Simulation &sim, SwitchSpec spec)
    : sim(sim), _spec(std::move(spec)),
      lookupEvent(sim.events(), [this] { lookupDue(); }),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix("eth.switch"))
{
    _metrics.counter("framesForwarded", _forwarded);
    _metrics.counter("framesFlooded", _flooded);
    _metrics.counter("framesDropped", _dropped);
    _metrics.gauge("learnedAddresses", [this] {
        return static_cast<double>(macTable.size());
    });
}

Switch::~Switch() = default;

Tap &
Switch::attach(Station &station)
{
    if (_spec.maxPorts && ports.size() >= _spec.maxPorts)
        UNET_FATAL(_spec.name, " has only ", _spec.maxPorts, " ports");
    auto port = std::make_unique<Port>(*this, ports.size());
    port->station = &station;
    port->tap = std::make_unique<PortTap>(*this, ports.size());
    ports.push_back(std::move(port));
    return *ports.back()->tap;
}

void
Switch::uplinkDue(std::size_t index)
{
    auto &port = *ports[index];
    while (!port.uplink.empty() &&
           port.uplink.front().arrivesAt <= sim.now()) {
        // frameIn copies into the lookup ring and never transmits
        // reentrantly, so the slot stays valid across the call.
        frameIn(index, port.uplink.front().frame);
        port.uplink.popFront();
    }
    if (!port.uplink.empty())
        port.uplinkDeliver.scheduleAt(port.uplink.front().arrivesAt);
}

void
Switch::frameIn(std::size_t in_port, const Frame &frame)
{
    // Shard attribution: switch state (MAC table, lookup/uplink
    // queues) is fabric-shard work from ingress onward.
    check::hb::ScopedTaskDomain shard("fabric.eth");
    // Learn the source address.
    macTable[frame.src.toU64()] = in_port;

    // Park the frame for the lookup/fabric latency; readyAt is
    // nondecreasing (constant delay, nondecreasing arrivals), so one
    // member event walks the boundaries in order.
    PendingLookup &slot = lookups.pushSlot();
    slot.frame = frame;
    slot.inPort = in_port;
    slot.readyAt = sim.now() + _spec.forwardLatency;
    if (!lookupEvent.pending())
        lookupEvent.scheduleAt(slot.readyAt);
}

void
Switch::lookupDue()
{
    while (!lookups.empty() && lookups.front().readyAt <= sim.now()) {
        // enqueue() only copies and schedules — nothing reenters the
        // lookup ring — so routing straight from the head slot is safe.
        const PendingLookup &head = lookups.front();
        const Frame &f = head.frame;
        std::size_t in_port = head.inPort;
        auto it = f.dst.isBroadcast() || f.dst.isMulticast()
            ? macTable.end() : macTable.find(f.dst.toU64());
        if (it != macTable.end()) {
            if (it->second != in_port) {
                ++_forwarded;
                enqueue(it->second, f);
            }
            // Destination on the ingress port: filter (drop silently).
        } else {
            ++_flooded;
            for (std::size_t p = 0; p < ports.size(); ++p)
                if (p != in_port)
                    enqueue(p, f);
        }
        lookups.popFront();
    }
    if (!lookups.empty())
        lookupEvent.scheduleAt(lookups.front().readyAt);
}

void
Switch::enqueue(std::size_t out_port, const Frame &frame)
{
    if (faultInjector) {
        fault::Decision d = faultInjector->decide(frame.frameBytes() * 8);
        if (d.faulty()) {
            faultInjector->stamp(frame.trace, d);
            if (d.drop)
                return;
            Frame copy = frame;
            if (d.corrupt)
                copy.faultCorruptBit = d.corruptBit;
            int copies = d.duplicate ? 2 : 1;
            if (d.delay != 0) {
                // A held-back frame re-enters the egress queue later,
                // letting frames behind it overtake: real reordering
                // through the fabric.
                for (int c = 0; c < copies; ++c)
                    sim.scheduleIn(d.delay,
                                   [this, out_port, copy] {
                                       enqueueDirect(out_port, copy);
                                   });
                return;
            }
            for (int c = 0; c < copies; ++c)
                enqueueDirect(out_port, copy);
            return;
        }
    }
    enqueueDirect(out_port, frame);
}

void
Switch::enqueueDirect(std::size_t out_port, const Frame &frame)
{
    auto &port = *ports[out_port];
    if (port.queue.size() >= _spec.queueFrames) {
        ++_dropped;
        return;
    }
    QueuedFrame &slot = port.queue.pushSlot();
    slot.frame = frame;
    slot.arrived = sim.now();
    pump(out_port);
}

void
Switch::pump(std::size_t out_port)
{
    auto &port = *ports[out_port];
    if (port.pumping || port.queue.empty())
        return;

    const QueuedFrame &qf = port.queue.front();
    sim::Tick ser = sim::serializationTime(
        static_cast<std::int64_t>(qf.frame.wireBytes()), _spec.bitRate);
    sim::Tick start = std::max(sim.now(), port.downlinkBusyUntil);
    if (!_spec.fullDuplex)
        start = std::max(start, port.uplinkBusyUntil);
    sim::Tick end;
    if (_spec.cutThrough && start == sim.now() &&
        qf.arrived == sim.now()) {
        // Output trailed the input: the tail leaves just after it
        // arrived. Only legal for a frame being forwarded the moment
        // it arrived — anything that waited must re-serialize.
        end = start + _spec.cutThroughLag;
    } else {
        // Buffered (store-and-forward): full re-serialization.
        end = start + ser;
    }
    port.downlinkBusyUntil = end;
    if (!_spec.fullDuplex)
        port.uplinkBusyUntil = end;

    port.pumping = true;
    port.txFrame = qf.frame; // capacity-reusing copy
    port.queue.popFront();
    port.downlinkDeliver.scheduleAt(end + _spec.propDelay);
}

void
Switch::downlinkDue(std::size_t out_port)
{
    auto &port = *ports[out_port];
    port.station->frameArrived(port.txFrame);
    port.pumping = false;
    pump(out_port);
}

} // namespace unet::eth
