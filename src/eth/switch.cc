#include "eth/switch.hh"

#include "sim/logging.hh"

namespace unet::eth {

using namespace sim::literals;

SwitchSpec
SwitchSpec::bay28115()
{
    SwitchSpec s;
    s.name = "Bay-28115";
    s.forwardLatency = 3_us;
    s.cutThrough = true;
    s.maxPorts = 16;
    return s;
}

SwitchSpec
SwitchSpec::fn100()
{
    SwitchSpec s;
    s.name = "Cabletron-FN100";
    // Fig. 5: the FN100 adds ~34 us to the 40-byte round trip versus the
    // hub; store-and-forward re-serialization accounts for ~2x4.8 us,
    // the rest is fabric latency.
    s.forwardLatency = 12_us;
    s.maxPorts = 8;
    return s;
}

/**
 * One switch port: the dedicated segment to its station plus the
 * output queue for the switch->station direction.
 */
struct Switch::Port
{
    Station *station = nullptr;
    std::unique_ptr<PortTap> tap;

    /** Station->switch channel occupancy (shared if half duplex). */
    sim::Tick uplinkBusyUntil = 0;

    /** Switch->station channel occupancy. */
    sim::Tick downlinkBusyUntil = 0;

    /** Frames waiting for the downlink. */
    std::deque<Switch::QueuedFrame> queue;

    bool pumping = false;
};

/** Station-side transmit handle for one port. */
class Switch::PortTap : public Tap
{
  public:
    PortTap(Switch &sw, std::size_t index) : sw(sw), index(index) {}

    void
    transmit(Frame frame, TxCallback on_done) override
    {
        auto &port = *sw.ports[index];
        sim::Tick ser = sim::serializationTime(
            static_cast<std::int64_t>(frame.wireBytes()),
            sw._spec.bitRate);

        // Half-duplex segments share the channel with the downlink; we
        // model polite deferral (collisions on a two-station segment are
        // rare and retry quickly, so deferral captures the cost).
        sim::Tick start = std::max(sw.sim.now(), port.uplinkBusyUntil);
        if (!sw._spec.fullDuplex)
            start = std::max(start, port.downlinkBusyUntil);
        sim::Tick end = start + ser;
        port.uplinkBusyUntil = end;
        if (!sw._spec.fullDuplex)
            port.downlinkBusyUntil = end;

        auto shared = std::make_shared<Frame>(std::move(frame));
        sw.sim.schedule(end + sw._spec.propDelay, [this, shared] {
            sw.frameIn(index, std::move(*shared));
        });
        if (on_done)
            sw.sim.schedule(end, [cb = std::move(on_done)] { cb(true); });
    }

  private:
    Switch &sw;
    std::size_t index;
};

Switch::Switch(sim::Simulation &sim, SwitchSpec spec)
    : sim(sim), _spec(std::move(spec))
{
}

Switch::~Switch() = default;

Tap &
Switch::attach(Station &station)
{
    if (_spec.maxPorts && ports.size() >= _spec.maxPorts)
        UNET_FATAL(_spec.name, " has only ", _spec.maxPorts, " ports");
    auto port = std::make_unique<Port>();
    port->station = &station;
    port->tap = std::make_unique<PortTap>(*this, ports.size());
    ports.push_back(std::move(port));
    return *ports.back()->tap;
}

void
Switch::frameIn(std::size_t in_port, Frame frame)
{
    // Learn the source address.
    macTable[frame.src.toU64()] = in_port;

    sim.scheduleIn(_spec.forwardLatency,
                   [this, in_port, f = std::move(frame)]() mutable {
        auto it = f.dst.isBroadcast() || f.dst.isMulticast()
            ? macTable.end() : macTable.find(f.dst.toU64());
        if (it != macTable.end()) {
            if (it->second != in_port) {
                ++_forwarded;
                enqueue(it->second, f);
            }
            // Destination on the ingress port: filter (drop silently).
        } else {
            ++_flooded;
            for (std::size_t p = 0; p < ports.size(); ++p)
                if (p != in_port)
                    enqueue(p, f);
        }
    });
}

void
Switch::enqueue(std::size_t out_port, const Frame &frame)
{
    auto &port = *ports[out_port];
    if (port.queue.size() >= _spec.queueFrames) {
        ++_dropped;
        return;
    }
    port.queue.push_back({frame, sim.now()});
    pump(out_port);
}

void
Switch::pump(std::size_t out_port)
{
    auto &port = *ports[out_port];
    if (port.pumping || port.queue.empty())
        return;

    QueuedFrame qf = std::move(port.queue.front());
    port.queue.pop_front();
    Frame frame = std::move(qf.frame);

    sim::Tick ser = sim::serializationTime(
        static_cast<std::int64_t>(frame.wireBytes()), _spec.bitRate);
    sim::Tick start = std::max(sim.now(), port.downlinkBusyUntil);
    if (!_spec.fullDuplex)
        start = std::max(start, port.uplinkBusyUntil);
    sim::Tick end;
    if (_spec.cutThrough && start == sim.now() &&
        qf.arrived == sim.now()) {
        // Output trailed the input: the tail leaves just after it
        // arrived. Only legal for a frame being forwarded the moment
        // it arrived — anything that waited must re-serialize.
        end = start + _spec.cutThroughLag;
    } else {
        // Buffered (store-and-forward): full re-serialization.
        end = start + ser;
    }
    port.downlinkBusyUntil = end;
    if (!_spec.fullDuplex)
        port.uplinkBusyUntil = end;

    port.pumping = true;
    auto shared = std::make_shared<Frame>(std::move(frame));
    sim.schedule(end + _spec.propDelay,
                 [this, out_port, shared] {
        auto &p = *ports[out_port];
        p.station->frameArrived(*shared);
        p.pumping = false;
        pump(out_port);
    });
}

} // namespace unet::eth
