/**
 * @file
 * Shared-medium Fast Ethernet segment (repeater hub) with CSMA/CD.
 *
 * All stations contend for one half-duplex 100 Mbps channel. A station
 * that finds the medium busy defers; two stations starting within a slot
 * time collide, jam, and retry after truncated binary exponential
 * backoff (up to 16 attempts, then the frame is dropped and the transmit
 * callback reports failure). This is the "broadcast hub" configuration
 * of Fig. 5 and the source of the paper's concern that "contention for
 * the shared medium might degrade performance as more hosts are added".
 */

#ifndef UNET_ETH_HUB_HH
#define UNET_ETH_HUB_HH

#include <deque>
#include <memory>
#include <vector>

#include "eth/network.hh"
#include "fault/fwd.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::eth {

/** Parameters of a shared 802.3 segment. */
struct HubSpec
{
    /** Line rate in bits/second. */
    double bitRate = 100e6;

    /** One-way propagation delay to any station. */
    sim::Tick propDelay = sim::nanoseconds(500);

    /** Slot time in bit times (512 for 802.3). */
    int slotBits = 512;

    /** Inter-frame gap in bit times (96 for 802.3). */
    int ifgBits = 96;

    /** Jam signal length in bit times (32 for 802.3). */
    int jamBits = 32;

    /** Attempts before a frame is abandoned (16 for 802.3). */
    int maxAttempts = 16;

    /** Backoff exponent cap (10 for 802.3). */
    int backoffLimit = 10;

    sim::Tick
    slotTime() const
    {
        return sim::serializationTime(slotBits, bitRate * 8);
    }

    sim::Tick
    ifgTime() const
    {
        return sim::serializationTime(ifgBits, bitRate * 8);
    }

    sim::Tick
    jamTime() const
    {
        return sim::serializationTime(jamBits, bitRate * 8);
    }
};

/** A repeater hub: one collision domain shared by all stations. */
class Hub : public Network
{
  public:
    Hub(sim::Simulation &sim, HubSpec spec = {});
    ~Hub() override;

    Tap &attach(Station &station) override;

    /** @name Statistics (also in the registry under eth.hub.*). @{ */
    std::uint64_t framesDelivered() const { return _delivered.value(); }
    std::uint64_t collisions() const { return _collisions.value(); }
    std::uint64_t deferrals() const { return _deferrals.value(); }
    /** @} */

    /** Fault plane: one decision per successfully transmitted frame
     *  (the shared medium faults all receivers alike). Null detaches. */
    void setFaultInjector(fault::Injector *inj) { faultInjector = inj; }

  private:
    struct Attempt;
    class StationTap;

    /** An attempt's start event fired: contend for the medium. */
    void tryStart(const std::shared_ptr<Attempt> &attempt);

    /** Abort the in-flight transmission and back off both parties. */
    void collide(const std::shared_ptr<Attempt> &late);

    /** Schedule a backoff retry or give up after maxAttempts. */
    void backoff(const std::shared_ptr<Attempt> &attempt);

    /** Successful completion: deliver to every other station. */
    void finish(const std::shared_ptr<Attempt> &attempt);

    sim::Simulation &sim;
    HubSpec spec;
    std::vector<Station *> stations;
    std::vector<std::unique_ptr<StationTap>> taps;

    /** Medium busy (transmission or jam) through this tick. */
    sim::Tick busyUntil = 0;

    /** The transmission currently on the wire, if any. */
    std::shared_ptr<Attempt> current;

    fault::Injector *faultInjector = nullptr;

    sim::Counter _delivered;
    sim::Counter _collisions;
    sim::Counter _drops;
    sim::Counter _deferrals;

    /** Declared after the counters it registers. */
    obs::MetricGroup _metrics;
};

} // namespace unet::eth

#endif // UNET_ETH_HUB_HH
