/**
 * @file
 * Ethernet frames.
 *
 * Frames carry real bytes: serialize() emits header + payload (padded to
 * the 46-byte minimum) + a genuine CRC-32 FCS, and parse() validates it.
 * Wire-time accounting includes the preamble/SFD and the inter-frame
 * gap, which is what makes Fast Ethernet saturate near 97 Mbps for
 * 1.5 KB frames (Fig. 6).
 */

#ifndef UNET_ETH_FRAME_HH
#define UNET_ETH_FRAME_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "eth/mac_address.hh"
#include "obs/trace_ctx.hh"

namespace unet::eth {

/** An Ethernet II frame. */
struct Frame
{
    /** @name 802.3 size constants (bytes). @{ */
    static constexpr std::size_t headerBytes = 14;
    static constexpr std::size_t fcsBytes = 4;
    static constexpr std::size_t preambleBytes = 8;
    static constexpr std::size_t interFrameGapBytes = 12;
    static constexpr std::size_t minPayload = 46;
    static constexpr std::size_t maxPayload = 1500;
    /** @} */

    MacAddress dst;
    MacAddress src;
    std::uint16_t etherType = 0;
    std::vector<std::uint8_t> payload;

    /** Message-trace custody state. Model metadata only: it rides along
     *  frame copies but is NOT carried by serialize()/parse() — paths
     *  that cross a byte boundary re-attach it from their descriptor. */
    obs::TraceContext trace;

    /** Wire-corruption marker (fault plane). The model carries frames
     *  as structs, so a bit flipped "on the wire" must materialize when
     *  the receiving NIC serializes the frame: serializeInto() flips
     *  this bit (mod frame length) AFTER computing the FCS, so parse()
     *  genuinely fails and the kernel drop path is load-bearing.
     *  Metadata like `trace`: rides copies, never parsed back. */
    static constexpr std::uint32_t noCorruptBit = 0xffffffffu;
    std::uint32_t faultCorruptBit = noCorruptBit;

    /** Frame length as counted on the wire (header+padded payload+FCS). */
    std::size_t
    frameBytes() const
    {
        return headerBytes + std::max(payload.size(), minPayload) +
            fcsBytes;
    }

    /**
     * Bytes occupying the medium per frame: preamble + frame + IFG.
     * Serialization time = wireBytes * 8 / line rate.
     */
    std::size_t
    wireBytes() const
    {
        return preambleBytes + frameBytes() + interFrameGapBytes;
    }

    /** True if the payload length is legal (may still need padding). */
    bool
    payloadSizeValid() const
    {
        return payload.size() <= maxPayload;
    }

    /** Serialize header + padded payload + computed FCS. */
    std::vector<std::uint8_t> serialize() const;

    /** serialize() into @p out (cleared first), reusing its capacity —
     *  the allocation-free variant for per-frame hot paths. */
    void serializeInto(std::vector<std::uint8_t> &out) const;

    /**
     * Parse raw bytes back into a frame, validating the FCS.
     * @return nullopt if the frame is short or the FCS mismatches.
     * The returned payload includes any pad bytes (the receiver cannot
     * tell data from pad; upper layers carry their own length field).
     */
    static std::optional<Frame> parse(std::span<const std::uint8_t> raw);

    /**
     * Assemble a frame from header + payload bytes that carry no FCS —
     * what a NIC sees after gathering its transmit buffers (the CRC is
     * generated in hardware on the way out). Panics on short input.
     */
    static Frame fromBytes(std::span<const std::uint8_t> raw);

    /** fromBytes() into @p out, reusing its payload capacity — the
     *  allocation-free variant for per-frame hot paths. */
    static void fromBytesInto(std::span<const std::uint8_t> raw,
                              Frame &out);
};

} // namespace unet::eth

#endif // UNET_ETH_FRAME_HH
