/**
 * @file
 * Full-duplex point-to-point Ethernet link.
 *
 * The paper notes that a switched Fast Ethernet port can be "a
 * full-duplex link which allows a host to simultaneously send and
 * receive messages ... and thus doubles the aggregate network
 * bandwidth". This link gives each direction its own 100 Mbps channel;
 * it also serves as the dedicated segment between a station and a
 * switch port.
 */

#ifndef UNET_ETH_LINK_HH
#define UNET_ETH_LINK_HH

#include <array>
#include <memory>

#include "eth/network.hh"
#include "fault/fwd.hh"
#include "sim/pool.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::eth {

/** A two-station link with independent channels per direction. */
class FullDuplexLink : public Network
{
  public:
    /**
     * @param sim        Owning simulation.
     * @param bit_rate   Line rate in bits/second (default 100BaseTX).
     * @param prop_delay One-way propagation delay.
     */
    FullDuplexLink(sim::Simulation &sim, double bit_rate = 100e6,
                   sim::Tick prop_delay = sim::nanoseconds(500));

    Tap &attach(Station &station) override;

    /** Frames delivered end-to-end (both directions). */
    std::uint64_t framesDelivered() const { return _delivered.value(); }

    /**
     * Fault plane: interpose @p inj on frames transmitted by station
     * @p direction (0 = first attached; -1 = both). Null detaches;
     * an absent injector costs one pointer test per frame.
     */
    void
    setFaultInjector(fault::Injector *inj, int direction = -1)
    {
        if (direction < 0)
            injectors[0] = injectors[1] = inj;
        else
            injectors[static_cast<std::size_t>(direction) % 2] = inj;
    }

  private:
    /**
     * One direction of the cable. In-flight frames live in a recycled
     * ring — payload buffers are reused across frames — and a single
     * member event walks their arrival boundaries instead of a heap
     * closure per frame.
     */
    class Side : public Tap
    {
      public:
        Side(FullDuplexLink &link, int index)
            : link(link), index(index),
              deliver(link.sim.events(), [this] { deliverDue(); })
        {}

        void transmit(const Frame &frame, TxCallback on_done) override;

      private:
        /** Carry one faulted frame to the peer (corrupt/dup/delay);
         *  bypasses the in-flight ring, whose deadline monotonicity a
         *  delayed frame would violate. */
        void deliverFaulty(const Frame &frame, sim::Tick arrives_at,
                           std::uint32_t corrupt_bit);

        struct InFlight
        {
            Frame frame;
            sim::Tick arrivesAt = 0;
        };

        void deliverDue();

        FullDuplexLink &link;
        int index;
        sim::SlotRing<InFlight> inFlight;
        sim::MemberEvent deliver;
        /** Delivery staging buffer; see deliverDue(). */
        Frame scratch;
    };

    sim::Simulation &sim;
    double bitRate;
    sim::Tick propDelay;
    std::array<Station *, 2> stations{};
    std::array<std::unique_ptr<Side>, 2> sides;
    std::array<fault::Injector *, 2> injectors{};
    std::array<sim::Tick, 2> busyUntil{};
    int attached = 0;
    sim::Counter _delivered;
};

} // namespace unet::eth

#endif // UNET_ETH_LINK_HH
