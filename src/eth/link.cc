#include "eth/link.hh"

#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::eth {

FullDuplexLink::FullDuplexLink(sim::Simulation &sim, double bit_rate,
                               sim::Tick prop_delay)
    : sim(sim), bitRate(bit_rate), propDelay(prop_delay)
{
    sides[0] = std::make_unique<Side>(*this, 0);
    sides[1] = std::make_unique<Side>(*this, 1);
}

Tap &
FullDuplexLink::attach(Station &station)
{
    if (attached >= 2)
        UNET_FATAL("point-to-point link already has two stations");
    stations[attached] = &station;
    return *sides[attached++];
}

void
FullDuplexLink::Side::transmit(const Frame &frame, TxCallback on_done)
{
    auto &l = link;
    if (l.attached < 2)
        UNET_PANIC("transmit on a link with only ", l.attached,
                   " station(s)");
    if (!frame.payloadSizeValid())
        UNET_PANIC("oversized frame handed to link");

    sim::Tick ser = sim::serializationTime(
        static_cast<std::int64_t>(frame.wireBytes()), l.bitRate);
    sim::Tick start = std::max(l.sim.now(), l.busyUntil[index]);
    sim::Tick end = start + ser;
    l.busyUntil[index] = end;

    if (fault::Injector *inj = l.injectors[index]) {
        fault::Decision d = inj->decide(frame.frameBytes() * 8);
        if (d.faulty()) {
            inj->stamp(frame.trace, d);
            // The frame occupied the wire either way, and the sender's
            // completion only means "left this station": report true.
            if (on_done)
                l.sim.schedule(end,
                               [cb = std::move(on_done)] { cb(true); });
            if (d.drop)
                return;
            sim::Tick arrives = end + l.propDelay + d.delay;
            std::uint32_t bit =
                d.corrupt ? d.corruptBit : Frame::noCorruptBit;
            deliverFaulty(frame, arrives, bit);
            if (d.duplicate)
                deliverFaulty(frame, arrives, Frame::noCorruptBit);
            return;
        }
    }

    // Copy-assign into a recycled slot: the payload vector keeps its
    // capacity across frames, so steady state allocates nothing.
    InFlight &slot = inFlight.pushSlot();
    slot.frame = frame;
    slot.arrivesAt = end + l.propDelay;
    if (!deliver.pending())
        deliver.scheduleAt(slot.arrivesAt);

    if (on_done)
        l.sim.schedule(end, [cb = std::move(on_done)] { cb(true); });
}

void
FullDuplexLink::Side::deliverFaulty(const Frame &frame,
                                    sim::Tick arrives_at,
                                    std::uint32_t corrupt_bit)
{
    // Faulted frames ride a heap closure: delay/duplication break the
    // nondecreasing-deadline contract of the in-flight ring, and
    // faults are rare enough that the allocation does not matter.
    auto &l = link;
    Frame copy = frame;
    copy.faultCorruptBit = corrupt_bit;
    l.sim.schedule(arrives_at, [this, copy = std::move(copy)] {
        auto &lk = link;
        ++lk._delivered;
        lk.stations[1 - index]->frameArrived(copy);
    });
}

void
FullDuplexLink::Side::deliverDue()
{
    auto &l = link;
    Station *peer = l.stations[1 - index];
    while (!inFlight.empty() &&
           inFlight.front().arrivesAt <= l.sim.now()) {
        ++l._delivered;
        // Copy into per-side scratch (capacity reused): a reentrant
        // transmit from the receiver could recycle the ring slot.
        scratch = inFlight.front().frame;
        inFlight.popFront();
        peer->frameArrived(scratch);
    }
    if (!inFlight.empty())
        deliver.scheduleAt(inFlight.front().arrivesAt);
}

} // namespace unet::eth
