#include "eth/frame.hh"

#include <algorithm>

#include "net/crc32.hh"
#include "sim/logging.hh"

namespace unet::eth {

std::vector<std::uint8_t>
Frame::serialize() const
{
    std::vector<std::uint8_t> out;
    serializeInto(out);
    return out;
}

void
Frame::serializeInto(std::vector<std::uint8_t> &out) const
{
    if (!payloadSizeValid())
        UNET_PANIC("frame payload of ", payload.size(),
                   " bytes exceeds the 1500-byte Ethernet maximum");

    out.clear();
    out.reserve(frameBytes());
    out.insert(out.end(), dst.raw().begin(), dst.raw().end());
    out.insert(out.end(), src.raw().begin(), src.raw().end());
    out.push_back(static_cast<std::uint8_t>(etherType >> 8));
    out.push_back(static_cast<std::uint8_t>(etherType));
    out.insert(out.end(), payload.begin(), payload.end());
    while (out.size() < headerBytes + minPayload)
        out.push_back(0); // pad

    std::uint32_t fcs = net::crc32(out);
    out.push_back(static_cast<std::uint8_t>(fcs));
    out.push_back(static_cast<std::uint8_t>(fcs >> 8));
    out.push_back(static_cast<std::uint8_t>(fcs >> 16));
    out.push_back(static_cast<std::uint8_t>(fcs >> 24));

    if (faultCorruptBit != noCorruptBit) {
        // Injected wire corruption: flip the marked bit after the FCS
        // was computed, so validation downstream must fail.
        std::size_t byte = (faultCorruptBit / 8) % out.size();
        out[byte] ^=
            static_cast<std::uint8_t>(1u << (faultCorruptBit % 8));
    }
}

Frame
Frame::fromBytes(std::span<const std::uint8_t> raw)
{
    Frame f;
    fromBytesInto(raw, f);
    return f;
}

void
Frame::fromBytesInto(std::span<const std::uint8_t> raw, Frame &out)
{
    if (raw.size() < headerBytes)
        UNET_PANIC("frame bytes shorter than the Ethernet header");
    std::array<std::uint8_t, 6> mac{};
    std::copy_n(raw.begin(), 6, mac.begin());
    out.dst = MacAddress(mac);
    std::copy_n(raw.begin() + 6, 6, mac.begin());
    out.src = MacAddress(mac);
    out.etherType = static_cast<std::uint16_t>((raw[12] << 8) | raw[13]);
    out.payload.assign(raw.begin() + headerBytes, raw.end());
    out.faultCorruptBit = noCorruptBit; // recycled slot: clear marker
}

std::optional<Frame>
Frame::parse(std::span<const std::uint8_t> raw)
{
    if (raw.size() < headerBytes + minPayload + fcsBytes)
        return std::nullopt;

    std::size_t body = raw.size() - fcsBytes;
    std::uint32_t want = net::crc32(raw.subspan(0, body));
    std::uint32_t got = raw[body] |
        (static_cast<std::uint32_t>(raw[body + 1]) << 8) |
        (static_cast<std::uint32_t>(raw[body + 2]) << 16) |
        (static_cast<std::uint32_t>(raw[body + 3]) << 24);
    if (want != got)
        return std::nullopt;

    Frame f;
    std::array<std::uint8_t, 6> mac{};
    std::copy_n(raw.begin(), 6, mac.begin());
    f.dst = MacAddress(mac);
    std::copy_n(raw.begin() + 6, 6, mac.begin());
    f.src = MacAddress(mac);
    f.etherType =
        static_cast<std::uint16_t>((raw[12] << 8) | raw[13]);
    f.payload.assign(raw.begin() + headerBytes, raw.begin() + body);
    return f;
}

} // namespace unet::eth
