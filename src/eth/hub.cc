#include "eth/hub.hh"

#include "check/hb/auditor.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"

namespace unet::eth {

struct Hub::Attempt
{
    Frame frame;
    TxCallback onDone;
    int station = -1;
    int attempts = 0;
    sim::Tick startedAt = 0;
    sim::EventHandle completion;
    sim::EventHandle startEvent;
};

class Hub::StationTap : public Tap
{
  public:
    StationTap(Hub &hub, int index) : hub(hub), index(index) {}

    void
    transmit(const Frame &frame, TxCallback on_done) override
    {
        auto attempt = std::make_shared<Attempt>();
        attempt->frame = frame;
        attempt->onDone = std::move(on_done);
        attempt->station = index;
        attempt->attempts = 1;
        hub.tryStart(attempt);
    }

  private:
    Hub &hub;
    int index;
};

Hub::Hub(sim::Simulation &sim, HubSpec spec)
    : sim(sim), spec(spec),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix("eth.hub"))
{
    _metrics.counter("framesDelivered", _delivered);
    _metrics.counter("collisions", _collisions);
    _metrics.counter("framesDropped", _drops);
    _metrics.counter("deferrals", _deferrals);
}

Hub::~Hub() = default;

Tap &
Hub::attach(Station &station)
{
    stations.push_back(&station);
    taps.push_back(std::make_unique<StationTap>(
        *this, static_cast<int>(stations.size()) - 1));
    return *taps.back();
}

void
Hub::tryStart(const std::shared_ptr<Attempt> &attempt)
{
    // Shard attribution for the happens-before auditor: the shared
    // medium is fabric state, not any station's shard.
    check::hb::ScopedTaskDomain shard("fabric.eth");
    sim::Tick now = sim.now();

    if (current) {
        // Someone is transmitting. Within a slot time of their start we
        // would not yet sense carrier: collision. Later, we defer.
        if (now - current->startedAt < spec.slotTime()) {
            collide(attempt);
        } else {
            ++_deferrals;
            attempt->startEvent = sim.schedule(
                busyUntil + spec.ifgTime(),
                [this, attempt] { tryStart(attempt); });
        }
        return;
    }

    if (now < busyUntil) {
        // Medium still cooling down (jam or IFG); retry when clear.
        ++_deferrals;
        attempt->startEvent = sim.schedule(
            busyUntil + spec.ifgTime(),
            [this, attempt] { tryStart(attempt); });
        return;
    }

    // Medium idle: start transmitting.
    current = attempt;
    attempt->startedAt = now;
    sim::Tick ser = sim::serializationTime(
        static_cast<std::int64_t>(attempt->frame.wireBytes()),
        spec.bitRate);
    busyUntil = now + ser;
    attempt->completion =
        sim.schedule(busyUntil, [this, attempt] { finish(attempt); });
}

void
Hub::collide(const std::shared_ptr<Attempt> &late)
{
    ++_collisions;
    std::shared_ptr<Attempt> early = current;
    current = nullptr;

    // Both transmissions abort and jam the medium.
    early->completion.cancel();
    busyUntil = sim.now() + spec.jamTime();

    backoff(early);
    backoff(late);
}

void
Hub::backoff(const std::shared_ptr<Attempt> &attempt)
{
    if (attempt->attempts >= spec.maxAttempts) {
        ++_drops;
        if (attempt->onDone)
            attempt->onDone(false);
        return;
    }

    int exponent = std::min(attempt->attempts, spec.backoffLimit);
    std::int64_t slots =
        sim.random().uniform(0, (std::int64_t{1} << exponent) - 1);
    ++attempt->attempts;

    sim::Tick retry = busyUntil + spec.ifgTime() +
        slots * spec.slotTime();
    attempt->startEvent =
        sim.schedule(retry, [this, attempt] { tryStart(attempt); });
}

void
Hub::finish(const std::shared_ptr<Attempt> &attempt)
{
    check::hb::ScopedTaskDomain shard("fabric.eth");
    current = nullptr;
    busyUntil = sim.now() + spec.ifgTime();

    // Fault plane: one decision covers the whole broadcast — on a
    // shared medium every receiver sees the same damaged signal.
    sim::Tick extraDelay = 0;
    int copies = 1;
    if (faultInjector) {
        fault::Decision d =
            faultInjector->decide(attempt->frame.frameBytes() * 8);
        if (d.faulty()) {
            faultInjector->stamp(attempt->frame.trace, d);
            if (d.drop) {
                if (attempt->onDone)
                    attempt->onDone(true);
                return;
            }
            if (d.corrupt)
                attempt->frame.faultCorruptBit = d.corruptBit;
            extraDelay = d.delay;
            copies = d.duplicate ? 2 : 1;
        }
    }

    auto shared = std::make_shared<Frame>(std::move(attempt->frame));
    for (int c = 0; c < copies; ++c) {
        for (std::size_t i = 0; i < stations.size(); ++i) {
            if (static_cast<int>(i) == attempt->station)
                continue;
            ++_delivered;
            Station *dst = stations[i];
            sim.schedule(sim.now() + spec.propDelay + extraDelay,
                         [dst, shared] { dst->frameArrived(*shared); });
        }
    }
    if (attempt->onDone)
        attempt->onDone(true);
}

} // namespace unet::eth
