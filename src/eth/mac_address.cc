#include "eth/mac_address.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace unet::eth {

MacAddress
MacAddress::fromString(const std::string &text)
{
    std::array<unsigned, 6> v{};
    int consumed = 0;
    int matched = std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x%n",
                              &v[0], &v[1], &v[2], &v[3], &v[4], &v[5],
                              &consumed);
    if (matched != 6 || consumed != static_cast<int>(text.size()))
        UNET_FATAL("malformed MAC address '", text, "'");
    std::array<std::uint8_t, 6> bytes{};
    for (int i = 0; i < 6; ++i) {
        if (v[i] > 0xFF)
            UNET_FATAL("malformed MAC address '", text, "'");
        bytes[i] = static_cast<std::uint8_t>(v[i]);
    }
    return MacAddress(bytes);
}

std::string
MacAddress::toString() const
{
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  bytes[0], bytes[1], bytes[2], bytes[3], bytes[4],
                  bytes[5]);
    return buf;
}

} // namespace unet::eth
