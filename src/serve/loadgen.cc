#include "serve/loadgen.hh"

#include <deque>

#include "sim/logging.hh"
#include "sim/process.hh"

namespace unet::serve {

namespace {

/** Deterministic request payload: a function of (client, request). */
std::vector<std::uint8_t>
makePayload(std::uint32_t bytes, std::uint32_t client, int request)
{
    std::vector<std::uint8_t> p(bytes);
    for (std::uint32_t i = 0; i < bytes; ++i)
        p[i] = static_cast<std::uint8_t>(client * 7 + request * 3 + i);
    return p;
}

/** Poll the AM layer (handling responses and retransmits) until the
 *  intended tick @p when; no-op if it already passed. */
void
idleUntil(sim::Process &proc, RpcClient &client, sim::Tick when)
{
    sim::Tick current = proc.simulation().now();
    if (when > current)
        client.am().pollUntil(proc, [] { return false; },
                              when - current);
}

/** Retire the reliability tail shared by both disciplines: wait for
 *  stragglers, drain unACKed sends, then a short grace poll so the
 *  peer's final retransmits get their ACKs. */
bool
finish(sim::Process &proc, RpcClient &client, const GenParams &params)
{
    bool ok = client.awaitAll(proc, params.completionTimeout);
    client.am().drain(proc, sim::seconds(5));
    client.am().pollUntil(proc, [] { return false; },
                          sim::milliseconds(2));
    return ok;
}

} // namespace

bool
runOpenLoop(sim::Process &proc, RpcClient &client,
            const GenParams &params, const OpenLoopSpec &spec)
{
    sim::Random rng(clientSeed(params.seed, params.clientIndex));
    // The first arrival draws a gap too: starting every client at
    // params.start would open the run with a synchronized incast burst
    // instead of a Poisson stream.
    sim::Tick next =
        alignToResidue(params.start + rng.exponentialTicks(spec.meanGap),
                       params.stride, params.clientIndex);

    for (int i = 0; i < spec.requests; ++i) {
        auto payload =
            makePayload(params.requestBytes, params.clientIndex, i);
        MethodId method =
            params.methods[static_cast<std::size_t>(i) %
                           params.methods.size()];

        idleUntil(proc, client, next);
        // A few hundred ns of poll cost past the intended tick is the
        // measurement working as designed; "late" means a real stall
        // (window full, retransmit wait) pushed the issue off schedule.
        if (proc.simulation().now() > next + sim::microseconds(1))
            client.serveStats().countLate();
        // The epoch is the *intended* arrival even when we are late:
        // open-loop latency includes client-side queueing delay.
        if (!client.issue(proc, method, next, payload))
            return false;

        next = alignToResidue(next + rng.exponentialTicks(spec.meanGap),
                              params.stride, params.clientIndex);
    }

    return finish(proc, client, params);
}

bool
runClosedLoop(sim::Process &proc, RpcClient &client,
              const GenParams &params, const ClosedLoopSpec &spec)
{
    sim::Random rng(clientSeed(params.seed, params.clientIndex));

    // Ticks at which a window slot becomes ready to issue again.
    std::deque<sim::Tick> ready;
    auto think = [&](sim::Tick from) {
        return alignToResidue(from + rng.exponentialTicks(
                                         std::max<sim::Tick>(
                                             spec.meanThink, 1)),
                              params.stride, params.clientIndex);
    };

    client.onComplete = [&](MethodId, sim::Tick completed) {
        ready.push_back(think(completed));
    };

    // Stagger the initial window by one think time each.
    sim::Tick t0 = params.start;
    for (int w = 0; w < spec.window; ++w) {
        t0 = think(t0);
        ready.push_back(t0);
    }

    bool ok = true;
    for (int i = 0; i < spec.requests; ++i) {
        if (!client.am().pollUntil(proc,
                                   [&] { return !ready.empty(); },
                                   params.completionTimeout)) {
            // A completion never arrived to refill the window.
            ok = false;
            break;
        }
        sim::Tick slot = ready.front();
        ready.pop_front();

        idleUntil(proc, client, slot);
        if (proc.simulation().now() > slot + sim::microseconds(1))
            client.serveStats().countLate();

        auto payload =
            makePayload(params.requestBytes, params.clientIndex, i);
        MethodId method =
            params.methods[static_cast<std::size_t>(i) %
                           params.methods.size()];
        if (!client.issue(proc, method, slot, payload)) {
            ok = false;
            break;
        }
    }

    bool drained = finish(proc, client, params);
    // onComplete captures this frame's deque; disarm before returning.
    client.onComplete = nullptr;
    return ok && drained;
}

} // namespace unet::serve
