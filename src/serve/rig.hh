/**
 * @file
 * ServeRig: N RPC clients fanning into one server across a simulated
 * fabric.
 *
 * The incast experiment the paper's microbenchmarks cannot express:
 * every client node is a full host + NIC + U-Net stack, the server is
 * one more, and all of them hang off the real switch model (Bay 28115
 * for Fast Ethernet, ASX-200 for ATM), so fan-in contention, switch
 * queueing, and — with a fault scenario armed — Gilbert-Elliott burst
 * loss shape the measured SLO curves exactly as they shape the
 * transport.
 *
 * One rig = one experiment: construct, run() once with a workload,
 * read the RunResult (or the metrics registry / digest for stability
 * checks), destroy.
 */

#ifndef UNET_SERVE_RIG_HH
#define UNET_SERVE_RIG_HH

#include <memory>
#include <string>
#include <vector>

#include "atm/switch.hh"
#include "eth/link.hh"
#include "eth/switch.hh"
#include "fault/fault.hh"
#include "serve/loadgen.hh"
#include "serve/rpc.hh"
#include "unet/os_service.hh"
#include "unet/unet_atm.hh"
#include "unet/unet_fe.hh"

namespace unet::serve {

/** Which NIC/fabric pair carries the experiment. */
enum class NicKind { Fe, Atm };

inline const char *
nicName(NicKind nic)
{
    return nic == NicKind::Fe ? "FE" : "ATM";
}

/** Topology and service-model recipe (what the cluster *is*). */
struct RigSpec
{
    NicKind nic = NicKind::Fe;

    /** Client nodes (the server is one more). */
    int clients = 4;

    /** Experiment seed: client arrival streams, server service draws,
     *  and the fault plan all derive from it deterministically. */
    std::uint64_t seed = 1;

    /** Fault scenario string (fault::Plan grammar), "" = clean.
     *  Sites: "eth.switch"/"atm.switch", "nic.fe.rx.c<i>"/".s",
     *  "atm.link.c<i>"/".s". */
    std::string faults;

    /** Dispatch table; default one echo-like method (4us fixed + 2us
     *  exponential mean service). */
    std::vector<MethodSpec> methods{MethodSpec{}};

    /** Latency SLO for violation counting. */
    sim::Tick slo = sim::microseconds(400);

    /** Request payload bytes (<= 20 keeps requests single-cell). */
    std::uint32_t requestBytes = 16;

    /** Simulated-time watchdog for one run. */
    sim::Tick simTimeLimit = sim::seconds(30);

    am::AmSpec clientAm{};
    am::AmSpec serverAm = RpcServer::serverAmSpec();

    /** OS-service limits for every node. Endpoints are created through
     *  the OS service (boot-time, so the syscall cost is not charged);
     *  the channel ceiling is wide by default so the server endpoint
     *  can fan in past the stock 64-channel limit. */
    OsLimits osLimits{8, 4096};

    /** ATM rigs: per-node link (OC-3c, matching the PCA-200 rig). */
    atm::LinkSpec atmLink = atm::LinkSpec::oc3();
};

/** Client discipline and load (what the experiment *does*). */
struct Workload
{
    bool closedLoop = false;
    int requestsPerClient = 20;

    /** Open loop: mean per-client inter-arrival gap. Offered load in
     *  requests/sec = clients * 1e12 / meanGap. */
    sim::Tick meanGap = sim::microseconds(400);

    /** Closed loop: per-client window and mean think time. */
    int window = 1;
    sim::Tick meanThink = sim::microseconds(100);

    sim::Tick completionTimeout = sim::seconds(2);
};

/** What one run measured. */
struct RunResult
{
    /** All client and server fibers ran to completion before the
     *  watchdog. */
    bool finished = false;

    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t dupResponses = 0;
    std::uint64_t issuedLate = 0;
    std::uint64_t giveUps = 0;
    std::uint64_t sloViolations = 0;
    std::uint64_t served = 0;

    std::uint64_t clientRetransmits = 0;
    std::uint64_t serverRetransmits = 0;
    std::uint64_t serverRxQueueDrops = 0;

    /** First intended arrival to last completion-side quiesce. */
    sim::Tick makespan = 0;

    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;

    /** Completions per second of makespan. */
    double goodputRps = 0.0;

    /** Violations / issued (the published SLO curve's y-axis). */
    double sloViolationRate = 0.0;
};

/** A fully wired serving cluster. */
class ServeRig
{
  public:
    explicit ServeRig(RigSpec spec);
    ~ServeRig();

    ServeRig(const ServeRig &) = delete;
    ServeRig &operator=(const ServeRig &) = delete;

    /** Run one workload to quiescence. Callable once per rig. */
    RunResult run(const Workload &w);

    sim::Simulation &simulation() { return sim; }
    obs::Registry &metrics() { return sim.metrics(); }
    ServeStats &stats() { return *_stats; }
    RpcServer &server() { return *_server; }
    RpcClient &client(int i) { return *clients.at(i)->rpc; }
    Endpoint &serverEndpoint() { return *serverEp; }
    int clientCount() const { return spec.clients; }

  private:
    struct ClientNode
    {
        std::unique_ptr<host::Host> host;
        std::unique_ptr<atm::AtmLink> link;  ///< ATM only
        std::unique_ptr<nic::Dc21140> nicFe; ///< FE only
        std::unique_ptr<nic::Pca200> nicAtm; ///< ATM only
        std::unique_ptr<UNet> unet;
        std::unique_ptr<OsService> os;
        std::unique_ptr<sim::Process> proc;
        Endpoint *endpoint = nullptr;
        std::unique_ptr<RpcClient> rpc;
        ChannelId toServer = invalidChannel;
        sim::Tick finishedAt = 0;
    };

    RigSpec spec;
    sim::Simulation sim;

    // Fabric (one of these is populated).
    std::unique_ptr<eth::Switch> ethSwitch;
    std::unique_ptr<atm::Switch> atmSwitch;
    std::unique_ptr<atm::Signalling> signalling;
    std::vector<std::size_t> atmPorts; ///< [i] = client i; back = server

    // Server node.
    std::unique_ptr<host::Host> serverHost;
    std::unique_ptr<atm::AtmLink> serverLink;
    std::unique_ptr<nic::Dc21140> serverNicFe;
    std::unique_ptr<nic::Pca200> serverNicAtm;
    std::unique_ptr<UNet> serverUnet;
    std::unique_ptr<OsService> serverOs;
    std::unique_ptr<sim::Process> serverProc;
    Endpoint *serverEp = nullptr;

    std::unique_ptr<ServeStats> _stats;
    std::unique_ptr<RpcServer> _server;
    std::vector<std::unique_ptr<ClientNode>> clients;

    int finishedClients = 0;
    bool serverOk = false;
    /** Set by the server fiber once serve() (incl. drain) returned;
     *  releases the clients' post-run linger. */
    bool serverDone = false;
    std::vector<bool> clientOk;
    bool ran = false;
    Workload workload;

    /** Last member: its injector metrics must unregister before the
     *  simulation's registry dies. */
    fault::Plan plan;
};

} // namespace unet::serve

#endif // UNET_SERVE_RIG_HH
