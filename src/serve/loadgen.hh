/**
 * @file
 * Load generators for the serving plane.
 *
 * Two canonical client disciplines (the distinction "Fast Userspace
 * Networking for the Rest of Us" insists on for serving metrics):
 *
 *  - open loop: requests arrive on a deterministic Poisson schedule
 *    that does NOT react to completions. The latency epoch of every
 *    request is its *intended* arrival tick, so client-side queueing
 *    (AM window stalls when the server falls behind) counts against
 *    the measured latency — the coordinated-omission-free measurement.
 *
 *  - closed loop: each client keeps at most `window` requests
 *    outstanding and re-issues a slot only after the completion plus
 *    an exponential think time, so offered load self-throttles to the
 *    service rate.
 *
 * Determinism: every client draws inter-arrival gaps and think times
 * from its own sim::Random, seeded from (experiment seed, client
 * index) — never from the simulation's RNG — and every intended issue
 * tick is aligned to the client's residue class modulo the client
 * count, so no two clients ever share an issue tick. Same-tick event
 * permutation under UNET_PERTURB therefore has no client-visible
 * ordering to change at the generators, and the published curves stay
 * digest-stable across salts.
 */

#ifndef UNET_SERVE_LOADGEN_HH
#define UNET_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "serve/rpc.hh"
#include "sim/random.hh"

namespace unet::serve {

/** Open-loop (Poisson arrival) client discipline. */
struct OpenLoopSpec
{
    /** Requests each client issues. */
    int requests = 20;

    /** Mean inter-arrival gap per client (offered load =
     *  clients / meanGap). */
    sim::Tick meanGap = sim::microseconds(400);
};

/** Closed-loop (window + think time) client discipline. */
struct ClosedLoopSpec
{
    /** Requests each client issues. */
    int requests = 20;

    /** Outstanding-request window per client. */
    int window = 1;

    /** Mean exponential think time between a completion and the
     *  replacement issue (0 = back-to-back). */
    sim::Tick meanThink = sim::microseconds(100);
};

/** Shared per-client generator parameters. */
struct GenParams
{
    std::uint32_t clientIndex = 0;

    /** Residue-class modulus (the experiment's client count): every
     *  intended issue tick satisfies tick % stride == clientIndex. */
    std::uint32_t stride = 1;

    /** Experiment seed; mixed with clientIndex for the private RNG. */
    std::uint64_t seed = 1;

    /** First intended arrival no earlier than this. */
    sim::Tick start = sim::microseconds(100);

    /** Method ids cycled round-robin across the client's requests. */
    std::vector<MethodId> methods{0};

    /** Request payload bytes (kept <= 20 so requests stay single-cell
     *  on ATM: 20 payload + 20 AM header = one 40-byte cell). */
    std::uint32_t requestBytes = 16;

    /** Give-up bound while waiting for stragglers at the end. */
    sim::Tick completionTimeout = sim::seconds(2);
};

/**
 * Run one open-loop client to completion on the calling process.
 * Issues spec.requests Poisson-spaced requests, polling for responses
 * while idle, then waits (bounded) for the stragglers.
 * @return true if every request completed.
 */
bool runOpenLoop(sim::Process &proc, RpcClient &client,
                 const GenParams &params, const OpenLoopSpec &spec);

/**
 * Run one closed-loop client to completion on the calling process.
 * Keeps at most spec.window requests outstanding; each completion
 * schedules the replacement issue after an exponential think time.
 * @return true if every request completed.
 */
bool runClosedLoop(sim::Process &proc, RpcClient &client,
                   const GenParams &params, const ClosedLoopSpec &spec);

/** Align @p t up to the client's residue class: the smallest
 *  tick' >= t with tick' % stride == clientIndex. */
inline sim::Tick
alignToResidue(sim::Tick t, std::uint32_t stride, std::uint32_t index)
{
    if (stride <= 1)
        return t;
    sim::Tick s = static_cast<sim::Tick>(stride);
    sim::Tick r = static_cast<sim::Tick>(index % stride);
    sim::Tick m = t % s;
    return m <= r ? t + (r - m) : t + (s - m) + r;
}

/** The private, perturbation-independent RNG seed of one client. */
inline std::uint64_t
clientSeed(std::uint64_t experiment_seed, std::uint32_t index)
{
    // Splitmix-style mix so adjacent indices land far apart.
    std::uint64_t z = experiment_seed + 0x9E3779B97F4A7C15ULL *
        (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace unet::serve

#endif // UNET_SERVE_LOADGEN_HH
