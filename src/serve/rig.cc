#include "serve/rig.hh"

#include <cstdio>
#include <numeric>

#include "fault/attach.hh"
#include "sim/logging.hh"

namespace unet::serve {

namespace {

/** Server endpoint: deep queues for fan-in, a channel per client. */
EndpointConfig
serverEndpointConfig(int clients)
{
    EndpointConfig ep;
    ep.sendQueueDepth = 256;
    ep.recvQueueDepth = 256;
    ep.freeQueueDepth = 128;
    ep.maxChannels = static_cast<std::size_t>(clients) + 8;
    return ep;
}

} // namespace

ServeRig::ServeRig(RigSpec s)
    : spec(std::move(s)), sim(spec.seed),
      plan(spec.faults.empty() ? fault::Plan{}
                               : fault::Plan::parse(spec.faults))
{
    if (spec.clients < 1)
        UNET_FATAL("serve rig needs at least one client");
    if (spec.methods.empty())
        UNET_FATAL("serve rig needs at least one method");

    // Fabric first.
    if (spec.nic == NicKind::Fe) {
        eth::SwitchSpec sw = eth::SwitchSpec::bay28115();
        // The paper's switch has 16 ports; serving incast wants
        // hundreds. Model a stacked deployment: same per-port
        // behaviour, no port cap.
        sw.maxPorts = 0;
        ethSwitch = std::make_unique<eth::Switch>(sim, sw);
        fault::attach(plan, sim, *ethSwitch);
    } else {
        atmSwitch = std::make_unique<atm::Switch>(
            sim, atm::SwitchSpec::asx200());
        signalling = std::make_unique<atm::Signalling>(*atmSwitch);
        fault::attach(plan, sim, *atmSwitch);
    }

    // Server node (MAC index 1 / first switch port).
    serverHost = std::make_unique<host::Host>(
        sim, "server", host::CpuSpec::pentium120(),
        host::BusSpec::pci());
    if (spec.nic == NicKind::Fe) {
        serverNicFe = std::make_unique<nic::Dc21140>(
            *serverHost, *ethSwitch, eth::MacAddress::fromIndex(1));
        serverUnet = std::make_unique<UNetFe>(*serverHost,
                                              *serverNicFe);
        fault::attach(plan, sim, *serverNicFe, ".s");
    } else {
        serverLink = std::make_unique<atm::AtmLink>(sim,
                                                    spec.atmLink);
        serverNicAtm = std::make_unique<nic::Pca200>(*serverHost,
                                                     *serverLink);
        serverUnet = std::make_unique<UNetAtm>(*serverHost,
                                               *serverNicAtm);
        fault::attach(plan, sim, *serverLink, ".s");
    }

    // Client nodes.
    for (int i = 0; i < spec.clients; ++i) {
        auto node = std::make_unique<ClientNode>();
        node->host = std::make_unique<host::Host>(
            sim, "c" + std::to_string(i), host::CpuSpec::pentium120(),
            host::BusSpec::pci());
        if (spec.nic == NicKind::Fe) {
            node->nicFe = std::make_unique<nic::Dc21140>(
                *node->host, *ethSwitch,
                eth::MacAddress::fromIndex(
                    static_cast<std::uint32_t>(i + 2)));
            node->unet = std::make_unique<UNetFe>(*node->host,
                                                  *node->nicFe);
            fault::attach(plan, sim, *node->nicFe,
                          ".c" + std::to_string(i));
        } else {
            // Distinct per-client propagation delays (cable-length
            // spread): with every node sharing cell-time and firmware
            // quantization constants, identical delays would land
            // independent clients' cells on the switch at the same
            // tick — a physically arbitrary tie the perturbation
            // auditor rightly flags. A picosecond per port breaks
            // every such tie without measurable latency effect.
            atm::LinkSpec link = spec.atmLink;
            link.propDelay += i + 1;
            node->link = std::make_unique<atm::AtmLink>(sim, link);
            node->nicAtm = std::make_unique<nic::Pca200>(*node->host,
                                                         *node->link);
            node->unet = std::make_unique<UNetAtm>(*node->host,
                                                   *node->nicAtm);
            fault::attach(plan, sim, *node->link,
                          ".c" + std::to_string(i));
        }
        clients.push_back(std::move(node));
    }

    // ATM ports: clients in index order, server last.
    if (spec.nic == NicKind::Atm) {
        for (auto &node : clients)
            atmPorts.push_back(atmSwitch->addPort(*node->link));
        atmPorts.push_back(atmSwitch->addPort(*serverLink));
    }

    // Processes, endpoints, RPC layers.
    serverProc = std::make_unique<sim::Process>(
        sim, "server",
        [this](sim::Process &p) {
            serverOk = _server->serve(p, [this] {
                return finishedClients == spec.clients;
            });
            serverDone = true;
        },
        4 * 1024 * 1024);
    // Shard attribution for the happens-before auditor: the server
    // fiber's work belongs to the server host's shard.
    serverProc->bindShardDomain(serverHost->name());
    serverOs = std::make_unique<OsService>(*serverUnet, spec.osLimits);
    serverEp = serverOs->createEndpoint(
        *serverProc, serverEndpointConfig(spec.clients));
    if (!serverEp)
        UNET_FATAL("serve rig: OS service denied the server endpoint");

    _stats = std::make_unique<ServeStats>(
        sim.metrics(), spec.methods.size(), spec.slo);
    _server = std::make_unique<RpcServer>(*serverUnet, *serverEp,
                                          spec.serverAm, spec.seed);
    for (const MethodSpec &m : spec.methods)
        _server->addMethod(m);

    clientOk.assign(static_cast<std::size_t>(spec.clients), false);
    for (int i = 0; i < spec.clients; ++i) {
        ClientNode &node = *clients[i];
        node.proc = std::make_unique<sim::Process>(
            sim, "client" + std::to_string(i),
            [this, i](sim::Process &p) {
                ClientNode &n = *clients[i];
                GenParams params;
                params.clientIndex = static_cast<std::uint32_t>(i);
                params.stride =
                    static_cast<std::uint32_t>(spec.clients);
                params.seed = spec.seed;
                params.methods.resize(spec.methods.size());
                std::iota(params.methods.begin(),
                          params.methods.end(), MethodId{0});
                params.requestBytes = spec.requestBytes;
                params.completionTimeout = workload.completionTimeout;

                bool ok;
                if (workload.closedLoop) {
                    ClosedLoopSpec cl;
                    cl.requests = workload.requestsPerClient;
                    cl.window = workload.window;
                    cl.meanThink = workload.meanThink;
                    ok = runClosedLoop(p, *n.rpc, params, cl);
                } else {
                    OpenLoopSpec ol;
                    ol.requests = workload.requestsPerClient;
                    ol.meanGap = workload.meanGap;
                    ok = runOpenLoop(p, *n.rpc, params, ol);
                }
                clientOk[static_cast<std::size_t>(i)] = ok;
                n.finishedAt = p.simulation().now();
                ++finishedClients;
                // Two-phase shutdown: keep polling (ACKing the
                // server's drain-phase retransmits) until the server
                // finished its own drain. A client that exits first
                // turns one lost final ACK into a dead channel.
                n.rpc->am().pollUntil(
                    p, [this] { return serverDone; }, sim::seconds(10));
            },
            512 * 1024);
        node.proc->bindShardDomain(node.host->name());
        node.os = std::make_unique<OsService>(*node.unet,
                                              spec.osLimits);
        node.endpoint = node.os->createEndpoint(*node.proc, {});
        if (!node.endpoint)
            UNET_FATAL("serve rig: OS service denied client endpoint ",
                       i);
    }

    // Channels: each client to the server.
    for (int i = 0; i < spec.clients; ++i) {
        ClientNode &node = *clients[i];
        ChannelId at_server = invalidChannel;
        if (spec.nic == NicKind::Atm) {
            UNetAtm::connect(
                static_cast<UNetAtm &>(*node.unet), *node.endpoint,
                atmPorts[static_cast<std::size_t>(i)],
                static_cast<UNetAtm &>(*serverUnet), *serverEp,
                atmPorts.back(), *signalling, node.toServer,
                at_server);
        } else {
            UNetFe::connect(static_cast<UNetFe &>(*node.unet),
                            *node.endpoint,
                            static_cast<UNetFe &>(*serverUnet),
                            *serverEp, node.toServer, at_server);
        }
        _server->openChannel(at_server);
        node.rpc = std::make_unique<RpcClient>(
            *node.unet, *node.endpoint, node.toServer,
            static_cast<std::uint32_t>(i), *_stats, spec.clientAm);
    }
}

ServeRig::~ServeRig() = default;

RunResult
ServeRig::run(const Workload &w)
{
    if (ran)
        UNET_FATAL("a ServeRig runs one workload; build another");
    ran = true;
    workload = w;

    sim::Tick start = sim.now();
    serverProc->start(sim::microseconds(1));
    // Distinct start ticks: no two client fibers ever share a
    // scheduling tick at startup (perturbation hygiene).
    for (int i = 0; i < spec.clients; ++i)
        clients[static_cast<std::size_t>(i)]->proc->start(
            sim::microseconds(10) + i);

    if (spec.simTimeLimit > 0)
        sim.runUntil(start + spec.simTimeLimit);
    else
        sim.run();

    RunResult r;
    r.finished = serverProc->finished();
    for (auto &node : clients)
        r.finished = r.finished && node->proc->finished();
    if (!r.finished) {
        std::fprintf(stderr,
                     "serve rig did not quiesce (%d/%d clients, "
                     "server finished=%d):\n",
                     finishedClients, spec.clients,
                     serverProc->finished() ? 1 : 0);
        std::fprintf(
            stderr, "  server: served=%llu retx=%llu rxDrops=%llu\n",
            static_cast<unsigned long long>(_server->served()),
            static_cast<unsigned long long>(
                _server->am().retransmits()),
            static_cast<unsigned long long>(
                serverEp->rxQueueDrops()));
        for (auto &node : clients) {
            if (node->proc->finished())
                continue;
            std::fprintf(
                stderr,
                "  %s: outstanding=%zu completions=%llu retx=%llu\n",
                node->proc->name().c_str(), node->rpc->outstanding(),
                static_cast<unsigned long long>(
                    node->rpc->completions()),
                static_cast<unsigned long long>(
                    node->rpc->am().retransmits()));
        }
    }

    for (auto &node : clients)
        r.clientRetransmits += node->rpc->am().retransmits();
    // Makespan ends at the last *completion*: the post-run drain and
    // ACK grace are protocol housekeeping, not served load.
    sim::Tick last = _stats->lastCompletion();
    r.makespan = last > start ? last - start : 0;

    r.issued = _stats->issued();
    r.completed = _stats->completed();
    r.dupResponses = _stats->dupResponses();
    r.issuedLate = _stats->issuedLate();
    r.giveUps = _stats->giveUps();
    r.sloViolations = _stats->sloViolations();
    r.served = _server->served();
    r.serverRetransmits = _server->am().retransmits();
    r.serverRxQueueDrops = serverEp->rxQueueDrops();

    r.p50Us = _stats->latencyNs().quantile(0.50) / 1000.0;
    r.p99Us = _stats->latencyNs().quantile(0.99) / 1000.0;
    r.p999Us = _stats->latencyNs().quantile(0.999) / 1000.0;
    if (!workload.closedLoop) {
        // Open loop: the offered-load horizon is the natural goodput
        // denominator — completed equals issued exactly when the plane
        // keeps up, and the ratio to offered load reads directly.
        // (Makespan would fold in the straggler tail of the slowest
        // client's Poisson stream.)
        sim::Tick horizon = static_cast<sim::Tick>(
                                workload.requestsPerClient) *
                            workload.meanGap;
        if (horizon > 0)
            r.goodputRps = static_cast<double>(r.completed) /
                           (static_cast<double>(horizon) * 1e-12);
    } else if (r.makespan > 0) {
        r.goodputRps = static_cast<double>(r.completed) /
                       (static_cast<double>(r.makespan) * 1e-12);
    }
    if (r.issued > 0)
        r.sloViolationRate = static_cast<double>(r.sloViolations) /
                             static_cast<double>(r.issued);
    return r;
}

} // namespace unet::serve
