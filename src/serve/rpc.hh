/**
 * @file
 * Active-Message RPC: the request/response layer of the serving plane.
 *
 * The paper stops at ping-pong and bandwidth; the serving plane asks
 * the question a datacenter operator would: what does U-Net's
 * user-level path deliver as *tail latency under offered load* when
 * hundreds of clients fan into one server through the switch? This
 * layer gives requests an identity (a per-client request id), a
 * server-side dispatch table with a configurable service-time model,
 * and client-side correlation that measures issue-to-consume latency
 * into obs histograms — all over the Active Message reliability layer,
 * so burst loss under incast exercises exactly the Go-Back-N credit
 * flow control the paper's AM layer provides.
 *
 * Wire format (one AM request or reply):
 *   handler  requestHandler (client -> server) or
 *            responseHandler (server -> client)
 *   args[0]  method id
 *   args[1]  request id (client-scoped, monotonically increasing)
 *   args[2]  client id (diagnostics)
 *   payload  request bytes / response bytes
 */

#ifndef UNET_SERVE_RPC_HH
#define UNET_SERVE_RPC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "am/active_messages.hh"
#include "check/access.hh"
#include "obs/metrics.hh"
#include "sim/random.hh"

namespace unet::serve {

/** Index into the server's dispatch table. */
using MethodId = std::uint32_t;

/** AM handler ids the RPC plane claims on its endpoints. */
constexpr am::HandlerId requestHandler = 1;
constexpr am::HandlerId responseHandler = 2;

/** One entry of the server's dispatch table. */
struct MethodSpec
{
    std::string name = "echo";

    /** Deterministic CPU cost charged per request. */
    sim::Tick fixedCost = sim::microseconds(4);

    /** Mean of an additional exponential cost component (0 = off),
     *  drawn from the server's own seeded sim::Random. */
    sim::Tick expMeanCost = sim::microseconds(2);

    /** Reply payload size in bytes (kept small so responses ride the
     *  small-message descriptor-inline path). */
    std::uint32_t responseBytes = 8;
};

/**
 * Client-side aggregate statistics for one serving experiment.
 *
 * Latency histograms are aggregated per method across all clients (a
 * thousand per-client registrations would swamp the registry and the
 * digest); counters cover the exactly-once accounting the tests
 * reconcile against am.retransmits. Registered under "serve.*"
 * (uniquified); declared before the simulation dies.
 */
class ServeStats
{
  public:
    /**
     * @param reg     Metrics registry (the simulation's).
     * @param methods Dispatch-table size (one histogram each).
     * @param slo     Latency SLO; completions above it count as
     *                violations.
     */
    ServeStats(obs::Registry &reg, std::size_t methods, sim::Tick slo);

    /** Record one completion: @p latency ticks for @p method,
     *  consumed at @p now. */
    void
    recordCompletion(MethodId method, sim::Tick latency, sim::Tick now)
    {
        ++_completed;
        if (now > _lastCompletion)
            _lastCompletion = now;
        if (latency > _slo)
            ++_sloViolations;
        // Ticks are picoseconds; histograms hold nanoseconds.
        _latencyNs.record(static_cast<std::uint64_t>(latency / 1000));
        if (method < _methodLatencyNs.size())
            _methodLatencyNs[method].record(
                static_cast<std::uint64_t>(latency / 1000));
    }

    void countIssue() { ++_issued; }
    void countLate() { ++_issuedLate; }
    void countDupResponse() { ++_dupResponses; }
    void countGiveUp() { ++_giveUps; }

    /** @name Accounting. @{ */
    std::uint64_t issued() const { return _issued.value(); }
    std::uint64_t completed() const { return _completed.value(); }
    std::uint64_t dupResponses() const { return _dupResponses.value(); }
    std::uint64_t issuedLate() const { return _issuedLate.value(); }
    std::uint64_t giveUps() const { return _giveUps.value(); }
    std::uint64_t sloViolations() const { return _sloViolations.value(); }
    sim::Tick slo() const { return _slo; }

    /** Tick of the last completion (goodput denominators should end
     *  here, not after the post-run drain grace). */
    sim::Tick lastCompletion() const { return _lastCompletion; }

    const obs::Histogram &latencyNs() const { return _latencyNs; }
    const obs::Histogram &
    methodLatencyNs(MethodId m) const
    {
        return _methodLatencyNs.at(m);
    }
    /** @} */

  private:
    sim::Tick _slo;
    sim::Tick _lastCompletion = 0;

    sim::Counter _issued;
    sim::Counter _completed;
    sim::Counter _dupResponses;
    sim::Counter _issuedLate;
    sim::Counter _giveUps;
    sim::Counter _sloViolations;

    /** End-to-end issue-to-consume latency, all methods. */
    obs::Histogram _latencyNs;

    /** Per-method latency (sized once in construction; the registry
     *  keeps pointers into this vector, so it never reallocates). */
    std::vector<obs::Histogram> _methodLatencyNs;

    /** Declared after the stats it registers. */
    obs::MetricGroup _metrics;
};

/**
 * The serving side: an AM dispatch table whose handlers charge a
 * service-time model on the host CPU and reply to the requester.
 *
 * The service time is fixedCost plus an exponential component drawn
 * from the server's own seeded Random — never the simulation's — so
 * arming a different workload perturbs nothing else and the draw
 * stream is a pure function of (seed, request order).
 */
class RpcServer
{
  public:
    /** AM knobs sized for fan-in: a wide window so replies to many
     *  clients rarely block inside a handler, and a deep free pool. */
    static am::AmSpec serverAmSpec();

    RpcServer(UNet &unet, Endpoint &ep,
              am::AmSpec spec = serverAmSpec(),
              std::uint64_t service_seed = 1);

    /** Append a dispatch-table entry; returns its MethodId. */
    MethodId addMethod(MethodSpec m);

    /** Open reliability state for one accepted client channel. */
    void openChannel(ChannelId chan) { _am.openChannel(chan); }

    /**
     * The server loop: poll (dispatching request handlers) until
     * @p done holds, then drain outstanding replies and give the last
     * ACKs a grace period to flush.
     * @return false if @p timeout elapsed before @p done.
     */
    bool serve(sim::Process &proc, const std::function<bool()> &done,
               sim::Tick timeout = sim::maxTick);

    am::ActiveMessages &am() { return _am; }

    /** @name Statistics. @{ */
    std::uint64_t served() const { return _served.value(); }
    std::uint64_t unknownMethods() const { return _unknown.value(); }
    const obs::Histogram &serviceNs() const { return _serviceNs; }
    /** @} */

  private:
    void handle(sim::Process &proc, am::Token token,
                const am::Args &args,
                std::span<const std::uint8_t> payload);

    UNet &unet;                      // hb-exempt(reference, set once)
    am::ActiveMessages _am;          // hb-exempt(own per-channel custody)
    sim::Random rng;                 // hb-guarded(_dispatchGuard)
    std::vector<MethodSpec> methods; // hb-guarded(_dispatchGuard)
    std::vector<std::uint8_t> replyBytes; // hb-guarded(_dispatchGuard)

    sim::Counter _served;            // hb-exempt(commutative metrics sink)
    sim::Counter _unknown;           // hb-exempt(commutative metrics sink)

    /** Service time actually charged (fixed + exponential), ns. */
    obs::Histogram _serviceNs;       // hb-exempt(commutative metrics sink)

    /** Custody/HB instrumentation over the dispatch table: mutated by
     *  addMethod at setup, swept by every dispatch. The shardability
     *  report decides whether it can be server-shard-local or must be
     *  replicated read-only. */
    check::ContextGuard _dispatchGuard{"rpc dispatch table"};

    /** Declared after the stats it registers. */
    obs::MetricGroup _metrics;       // hb-exempt(registration RAII)
};

/**
 * One client's view of the RPC plane: issues requests toward the
 * server channel, correlates responses by request id, measures
 * issue-to-consume latency, and suppresses duplicate responses (a
 * response whose id is no longer outstanding increments the dup
 * counter and is otherwise ignored — at-most-once completion per
 * request id, whatever the wire replays).
 */
class RpcClient
{
  public:
    RpcClient(UNet &unet, Endpoint &ep, ChannelId to_server,
              std::uint32_t client_id, ServeStats &stats,
              am::AmSpec spec = {});

    /**
     * Issue one request. @p issue_tick is the latency epoch: open-loop
     * generators pass the *intended* arrival tick so client-side
     * queueing (window stalls) counts against the measured latency.
     * Blocks while the AM window is full.
     * @return false if the channel died.
     */
    bool issue(sim::Process &proc, MethodId method, sim::Tick issue_tick,
               std::span<const std::uint8_t> payload = {});

    /** Outstanding (issued, uncompleted) requests. */
    std::size_t outstanding() const { return pending.size(); }

    /** Poll until every outstanding request completed.
     *  @return false on timeout (the stragglers are counted as
     *  give-ups in the stats). */
    bool awaitAll(sim::Process &proc, sim::Tick timeout);

    /** Invoked on each completion with (method, completion tick) —
     *  closed-loop generators schedule the next think from here. */
    std::function<void(MethodId, sim::Tick)> onComplete;

    am::ActiveMessages &am() { return _am; }
    ServeStats &serveStats() { return stats; }
    std::uint32_t clientId() const { return _clientId; }
    std::uint64_t completions() const { return _completions; }

  private:
    struct Pending
    {
        MethodId method;
        sim::Tick issued;
    };

    sim::Simulation &sim;
    am::ActiveMessages _am;
    ChannelId chan;
    std::uint32_t _clientId;
    ServeStats &stats;
    std::uint32_t nextReq = 1;
    std::uint64_t _completions = 0;
    std::map<std::uint32_t, Pending> pending;
};

} // namespace unet::serve

#endif // UNET_SERVE_RPC_HH
