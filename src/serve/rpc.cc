#include "serve/rpc.hh"

#include "sim/logging.hh"

namespace unet::serve {

ServeStats::ServeStats(obs::Registry &reg, std::size_t methods,
                       sim::Tick slo)
    : _slo(slo), _methodLatencyNs(methods),
      _metrics(reg, reg.uniquePrefix("serve"))
{
    _metrics.counter("issued", _issued);
    _metrics.counter("completed", _completed);
    _metrics.counter("dupResponses", _dupResponses);
    _metrics.counter("issuedLate", _issuedLate);
    _metrics.counter("giveUps", _giveUps);
    _metrics.counter("sloViolations", _sloViolations);
    _metrics.histogram("latency_ns", _latencyNs);
    for (std::size_t m = 0; m < methods; ++m)
        _metrics.histogram("m" + std::to_string(m) + ".latency_ns",
                           _methodLatencyNs[m]);
}

am::AmSpec
RpcServer::serverAmSpec()
{
    am::AmSpec spec;
    // A reply rarely blocks inside a request handler: per-client
    // traffic is capped by the *client's* window (8), so 16 covers it
    // with slack for crossing ACKs.
    spec.window = 16;
    // The serving plane never bulk-transfers; small chunks let the
    // default 256 KB buffer area fund the deep receive pool AND a
    // window of TX chunks (replies ride descriptor-inline anyway).
    spec.bulkMtu = 1024;
    spec.rxBuffers = 64;
    return spec;
}

RpcServer::RpcServer(UNet &unet, Endpoint &ep, am::AmSpec spec,
                     std::uint64_t service_seed)
    : unet(unet), _am(unet, ep, spec), rng(service_seed),
      _metrics(unet.host().simulation().metrics(),
               unet.host().simulation().metrics().uniquePrefix(
                   "serve.server"))
{
    _dispatchGuard.setLabel(unet.host().name() + ".rpc.dispatch");
    _metrics.counter("served", _served);
    _metrics.counter("unknownMethods", _unknown);
    _metrics.histogram("service_ns", _serviceNs);
    _am.setHandler(requestHandler,
                   [this](sim::Process &proc, am::Token token,
                          const am::Args &args,
                          std::span<const std::uint8_t> payload) {
                       handle(proc, token, args, payload);
                   });
}

MethodId
RpcServer::addMethod(MethodSpec m)
{
    _dispatchGuard.mutate("addMethod");
    methods.push_back(std::move(m));
    replyBytes.resize(
        std::max<std::size_t>(replyBytes.size(),
                              methods.back().responseBytes));
    for (std::size_t i = 0; i < replyBytes.size(); ++i)
        replyBytes[i] = static_cast<std::uint8_t>(0xA0 + i * 3);
    return static_cast<MethodId>(methods.size() - 1);
}

void
RpcServer::handle(sim::Process &proc, am::Token token,
                  const am::Args &args,
                  std::span<const std::uint8_t> payload)
{
    (void)payload;
    // A dispatch reads the table but advances the service-draw RNG,
    // so it counts as a mutation of the guarded dispatch state.
    _dispatchGuard.mutate("dispatch");
    MethodId method = args[0];
    if (method >= methods.size()) {
        ++_unknown;
        return; // no reply: the client's give-up accounting sees it
    }
    const MethodSpec &m = methods[method];

    sim::Tick cost = m.fixedCost;
    if (m.expMeanCost > 0)
        cost += rng.exponentialTicks(m.expMeanCost);
    if (cost > 0)
        unet.host().cpu().busy(proc, cost);
    _serviceNs.record(static_cast<std::uint64_t>(cost / 1000));
    ++_served;

    _am.reply(proc, token, responseHandler,
              {args[0], args[1], args[2], 0},
              std::span<const std::uint8_t>(replyBytes.data(),
                                            m.responseBytes));
}

bool
RpcServer::serve(sim::Process &proc, const std::function<bool()> &done,
                 sim::Tick timeout)
{
    bool finished = _am.pollUntil(proc, done, timeout);
    // Retire outstanding replies (retransmitting through loss), then
    // give the final cumulative ACKs a grace period to flush so the
    // clients' drains succeed too.
    _am.drain(proc, sim::seconds(5));
    _am.pollUntil(proc, [] { return false; }, sim::milliseconds(5));
    return finished;
}

RpcClient::RpcClient(UNet &unet, Endpoint &ep, ChannelId to_server,
                     std::uint32_t client_id, ServeStats &stats,
                     am::AmSpec spec)
    : sim(unet.host().simulation()), _am(unet, ep, spec),
      chan(to_server), _clientId(client_id), stats(stats)
{
    _am.openChannel(chan);
    _am.setHandler(
        responseHandler,
        [this](sim::Process &, am::Token, const am::Args &args,
               std::span<const std::uint8_t>) {
            auto it = pending.find(args[1]);
            if (it == pending.end()) {
                // Duplicate (or post-give-up) response: suppressed.
                this->stats.countDupResponse();
                return;
            }
            sim::Tick now = this->sim.now();
            MethodId method = it->second.method;
            this->stats.recordCompletion(method, now - it->second.issued,
                                         now);
            pending.erase(it);
            ++_completions;
            if (onComplete)
                onComplete(method, now);
        });
}

bool
RpcClient::issue(sim::Process &proc, MethodId method,
                 sim::Tick issue_tick,
                 std::span<const std::uint8_t> payload)
{
    std::uint32_t id = nextReq++;
    pending.emplace(id, Pending{method, issue_tick});
    stats.countIssue();
    if (!_am.request(proc, chan, requestHandler,
                     {method, id, _clientId, 0}, payload)) {
        pending.erase(id);
        stats.countGiveUp();
        return false;
    }
    return true;
}

bool
RpcClient::awaitAll(sim::Process &proc, sim::Tick timeout)
{
    bool ok = _am.pollUntil(proc, [this] { return pending.empty(); },
                            timeout);
    if (!ok) {
        for (std::size_t i = 0; i < pending.size(); ++i)
            stats.countGiveUp();
        pending.clear();
    }
    return ok;
}

} // namespace unet::serve
