/**
 * @file
 * Deterministic fault-injection plane.
 *
 * The paper's Active Messages layer exists because real 100BaseTX and
 * TAXI links drop, corrupt, and reorder traffic; this plane lets tests
 * and benches break the simulated network on purpose, reproducibly.
 *
 * An Injector sits at one custody boundary (an Ethernet link direction,
 * a hub or switch egress, an ATM fiber direction, a NIC receive-DMA
 * stage) and decides the fate of each unit (frame or cell) crossing it:
 * pass, drop, corrupt one bit, duplicate, or delay (bounded reordering
 * / latency jitter). A Plan maps site names to fault models and owns
 * the armed injectors; it can be built in code or parsed from a
 * `key=value` scenario string shared by tests and bench `--fault=`
 * flags (grammar in DESIGN.md §12).
 *
 * Determinism: every injector draws from its own sim::Random, seeded
 * from the plan seed and the site name — never from the simulation's
 * RNG — so arming a plan perturbs nothing but the faults themselves,
 * injectors are independent of attach order, and identical seed + plan
 * yields bit-identical runs. A site with no injector pays one null
 * pointer check (same discipline as enableTrace()).
 *
 * Every injected fault increments fault.<site>.* counters in the obs
 * registry and (when tracing) stamps a Fault span on the victim's
 * timeline, so Perfetto shows exactly which message died where.
 */

#ifndef UNET_FAULT_FAULT_HH
#define UNET_FAULT_FAULT_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace_ctx.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::fault {

/** Composable per-site fault model. Defaults are all inert. */
struct ModelSpec
{
    /** Bernoulli loss probability per unit. */
    double drop = 0.0;

    /** @name Gilbert-Elliott burst loss (enabled by gilbert). @{ */
    bool gilbert = false;
    double goodToBad = 0.0; ///< P(good -> bad) per unit
    double badToGood = 0.0; ///< P(bad -> good) per unit
    double badLoss = 1.0;   ///< loss probability in the bad state
    double goodLoss = 0.0;  ///< loss probability in the good state
    /** @} */

    /** Single-bit corruption probability per unit. The flipped bit is
     *  uniform over the unit's wire bytes; the Ethernet FCS / AAL5 CRC
     *  paths must catch it. */
    double corrupt = 0.0;

    /** Duplication probability per unit (a second copy arrives). */
    double duplicate = 0.0;

    /** Probability a unit is held back by reorderDelay, letting
     *  later units overtake it. */
    double reorder = 0.0;
    sim::Tick reorderDelay = sim::microseconds(100);

    /** Uniform extra latency in [0, jitterMax] added per unit (may
     *  reorder when it exceeds the inter-unit gap). */
    sim::Tick jitterMax = 0;

    /** Deterministic drops: every Nth unit (0 = off; counts 1-based,
     *  so dropEvery=5 drops units 4, 9, 14, ... of the 0-based
     *  sequence), and an explicit list of 0-based unit indices.
     *  Consumes no randomness — for surgical tests. */
    std::uint64_t dropEvery = 0;
    std::vector<std::uint64_t> dropUnits;

    /** True when every knob is at its no-fault default. */
    bool inert() const;
};

/** What happens to one unit crossing a site. */
struct Decision
{
    bool drop = false;
    bool corrupt = false;
    std::uint32_t corruptBit = 0; ///< bit index into the wire bytes
    bool duplicate = false;
    sim::Tick delay = 0; ///< extra latency (reorder hold-back + jitter)

    bool
    faulty() const
    {
        return drop || corrupt || duplicate || delay != 0;
    }
};

/**
 * The per-site fault engine. Components hold a raw pointer (null =
 * no faults); the owning Plan controls lifetime — keep the Plan alive
 * for as long as the simulation runs and destroy it before the
 * Simulation (its counters live in the sim's registry).
 */
class Injector
{
  public:
    /**
     * @param sim  Simulation whose registry/trace/clock we use.
     * @param site Dotted site name (e.g. "eth.link.0"); also the
     *             metric prefix: fault.<site>.*.
     * @param spec Fault model for this site.
     * @param seed Plan seed; mixed with the site name so injectors are
     *             independent of arming order.
     */
    Injector(sim::Simulation &sim, std::string site, ModelSpec spec,
             std::uint64_t seed);

    /** Decide the fate of the next unit of @p unit_bits wire bits. */
    Decision decide(std::size_t unit_bits);

    /** Record the fault on the victim's trace timeline (no-op for
     *  untraced messages or when tracing is off). */
    void stamp(const obs::TraceContext &ctx, const Decision &d);

    const std::string &site() const { return _site; }
    const ModelSpec &model() const { return _spec; }

    /** @name Statistics (also under fault.<site>.* in the registry). @{ */
    std::uint64_t units() const { return _units.value(); }
    std::uint64_t dropped() const { return _dropped.value(); }
    std::uint64_t corrupted() const { return _corrupted.value(); }
    std::uint64_t duplicated() const { return _duplicated.value(); }
    std::uint64_t delayed() const { return _delayed.value(); }
    /** @} */

  private:
    sim::Simulation &_sim;
    std::string _site;
    ModelSpec _spec;
    sim::Random _rng;
    bool _geBad = false;        ///< Gilbert-Elliott channel state
    std::uint64_t _unitIndex = 0;
    std::size_t _dropUnitsNext = 0; ///< cursor into sorted dropUnits

    sim::Counter _units;
    sim::Counter _dropped;
    sim::Counter _corrupted;
    sim::Counter _duplicated;
    sim::Counter _delayed;

    /** Declared after the counters it registers. */
    obs::MetricGroup _metrics;
};

/**
 * A named set of fault models plus the injectors armed from it.
 *
 * Build in code:
 *
 *     fault::Plan plan;
 *     plan.setSeed(7);
 *     plan.model("eth.link.0").drop = 0.05;
 *     link.setFaultInjector(plan.arm(sim, "eth.link.0"), 0);
 *
 * or parse a scenario string (see DESIGN.md §12 for the grammar):
 *
 *     auto plan = fault::Plan::parse("seed=7 eth.link.*.drop=0.05");
 *
 * arm() returns nullptr when no pattern matches the site or the
 * matched model is inert, so an empty plan arms nothing and the run
 * is bit-identical to one without the plane.
 */
class Plan
{
  public:
    Plan() = default;

    /** Parse a scenario string; UNET_FATAL on malformed input. */
    static Plan parse(std::string_view scenario);

    void setSeed(std::uint64_t s) { _seed = s; }
    std::uint64_t seed() const { return _seed; }

    /** Model for @p site_pattern (created inert if absent). Patterns
     *  are exact site names or prefixes ending in '*'. */
    ModelSpec &model(const std::string &site_pattern);

    /** True when no pattern carries a non-inert model. */
    bool empty() const;

    /**
     * Build the injector for @p site from the best-matching pattern
     * (longest wins; exact beats wildcard). @return nullptr when
     * nothing matches or the model is inert — the site then stays on
     * its zero-cost path.
     */
    Injector *arm(sim::Simulation &sim, std::string_view site);

    /** Injectors armed so far (for reporting). */
    const std::vector<std::unique_ptr<Injector>> &
    armed() const
    {
        return _injectors;
    }

  private:
    std::uint64_t _seed = 1;
    std::vector<std::pair<std::string, ModelSpec>> _models;
    std::vector<std::unique_ptr<Injector>> _injectors;
};

/** Flip bit @p bit (mod size) of @p bytes in place. */
void flipBit(std::span<std::uint8_t> bytes, std::uint32_t bit);

} // namespace unet::fault

#endif // UNET_FAULT_FAULT_HH
