/**
 * @file
 * Forward declarations for the fault-injection plane, so component
 * headers (eth/atm/nic) can hold an Injector pointer without pulling
 * in the full fault header.
 */

#ifndef UNET_FAULT_FWD_HH
#define UNET_FAULT_FWD_HH

namespace unet::fault {

class Injector;
class Plan;
struct ModelSpec;
struct Decision;

} // namespace unet::fault

#endif // UNET_FAULT_FWD_HH
