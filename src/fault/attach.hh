/**
 * @file
 * Convenience glue between a fault::Plan and the network components.
 *
 * Header-only so the fault library itself never depends on eth/atm/nic
 * (components only know the forward-declared Injector). Each helper
 * arms the plan for the component's canonical site name(s) and hands
 * the injector(s) to the component; a plan with no matching non-inert
 * model arms nothing and the component stays on its zero-cost path.
 *
 * Canonical site names (suffix wildcards in plans match these):
 *
 *   eth.link.<d>      FullDuplexLink, per direction (d = 0 for the
 *                     first-attached station's transmissions)
 *   eth.hub           Hub (one decision per transmitted frame)
 *   eth.switch        Switch (per egress-queued frame)
 *   atm.link.<d>      AtmLink, per direction
 *   atm.switch        atm::Switch ingress (per routed cell)
 *   nic.fe.rx         Dc21140 receive DMA (drop/corrupt only)
 *   nic.atm.rx        Pca200 receive path (drop/corrupt only)
 *
 * Multi-instance rigs pass a suffix: attach(plan, sim, link, ".a") arms
 * "eth.link.a.0" / "eth.link.a.1".
 */

#ifndef UNET_FAULT_ATTACH_HH
#define UNET_FAULT_ATTACH_HH

#include <string>

#include "atm/link.hh"
#include "atm/switch.hh"
#include "eth/hub.hh"
#include "eth/link.hh"
#include "eth/switch.hh"
#include "fault/fault.hh"
#include "nic/dc21140.hh"
#include "nic/pca200.hh"

namespace unet::fault {

inline void
attach(Plan &plan, sim::Simulation &sim, eth::FullDuplexLink &link,
       const std::string &suffix = "")
{
    link.setFaultInjector(
        plan.arm(sim, "eth.link" + suffix + ".0"), 0);
    link.setFaultInjector(
        plan.arm(sim, "eth.link" + suffix + ".1"), 1);
}

inline void
attach(Plan &plan, sim::Simulation &sim, eth::Hub &hub,
       const std::string &suffix = "")
{
    hub.setFaultInjector(plan.arm(sim, "eth.hub" + suffix));
}

inline void
attach(Plan &plan, sim::Simulation &sim, eth::Switch &sw,
       const std::string &suffix = "")
{
    sw.setFaultInjector(plan.arm(sim, "eth.switch" + suffix));
}

inline void
attach(Plan &plan, sim::Simulation &sim, atm::AtmLink &link,
       const std::string &suffix = "")
{
    link.setFaultInjector(
        plan.arm(sim, "atm.link" + suffix + ".0"), 0);
    link.setFaultInjector(
        plan.arm(sim, "atm.link" + suffix + ".1"), 1);
}

inline void
attach(Plan &plan, sim::Simulation &sim, atm::Switch &sw,
       const std::string &suffix = "")
{
    sw.setFaultInjector(plan.arm(sim, "atm.switch" + suffix));
}

inline void
attach(Plan &plan, sim::Simulation &sim, nic::Dc21140 &nic,
       const std::string &suffix = "")
{
    nic.setRxFaultInjector(plan.arm(sim, "nic.fe.rx" + suffix));
}

inline void
attach(Plan &plan, sim::Simulation &sim, nic::Pca200 &nic,
       const std::string &suffix = "")
{
    nic.setRxFaultInjector(plan.arm(sim, "nic.atm.rx" + suffix));
}

} // namespace unet::fault

#endif // UNET_FAULT_ATTACH_HH
