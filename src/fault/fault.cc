#include "fault/fault.hh"

#include <algorithm>
#include <charconv>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace unet::fault {

bool
ModelSpec::inert() const
{
    return drop == 0.0 && !gilbert && corrupt == 0.0 &&
        duplicate == 0.0 && reorder == 0.0 && jitterMax == 0 &&
        dropEvery == 0 && dropUnits.empty();
}

namespace {

/** FNV-1a: mix the site name into the plan seed so injector streams
 *  are independent of arming order. */
std::uint64_t
hashSite(std::string_view site)
{
    std::uint64_t h = 14695981039346656037ull;
    for (char c : site) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

Injector::Injector(sim::Simulation &sim, std::string site,
                   ModelSpec spec, std::uint64_t seed)
    : _sim(sim), _site(std::move(site)), _spec(std::move(spec)),
      _rng(seed ^ hashSite(_site)),
      _metrics(sim.metrics(),
               sim.metrics().uniquePrefix("fault." + _site))
{
    std::sort(_spec.dropUnits.begin(), _spec.dropUnits.end());
    _metrics.counter("units", _units);
    _metrics.counter("dropped", _dropped);
    _metrics.counter("corrupted", _corrupted);
    _metrics.counter("duplicated", _duplicated);
    _metrics.counter("delayed", _delayed);
}

Decision
Injector::decide(std::size_t unit_bits)
{
    Decision d;
    std::uint64_t n = _unitIndex++;
    ++_units;

    // Deterministic drops consume no randomness.
    bool doomed = _spec.dropEvery && (n + 1) % _spec.dropEvery == 0;
    while (_dropUnitsNext < _spec.dropUnits.size() &&
           _spec.dropUnits[_dropUnitsNext] < n)
        ++_dropUnitsNext;
    if (_dropUnitsNext < _spec.dropUnits.size() &&
        _spec.dropUnits[_dropUnitsNext] == n)
        doomed = true;

    // Every active random model consumes its draws for every unit,
    // independent of the unit's fate: surgically dropping unit k (or
    // losing it to another model) must not shift the random stream the
    // remaining units see.
    bool lost = false;
    if (_spec.gilbert) {
        // Advance the two-state channel once per unit, then lose with
        // the state's probability.
        if (_geBad) {
            if (_spec.badToGood > 0 && _rng.chance(_spec.badToGood))
                _geBad = false;
        } else if (_spec.goodToBad > 0 &&
                   _rng.chance(_spec.goodToBad)) {
            _geBad = true;
        }
        double p = _geBad ? _spec.badLoss : _spec.goodLoss;
        if (p > 0 && _rng.chance(p))
            lost = true;
    }
    if (_spec.drop > 0 && _rng.chance(_spec.drop))
        lost = true;

    bool corrupt = _spec.corrupt > 0 && _rng.chance(_spec.corrupt);
    std::uint32_t corrupt_bit = 0;
    if (corrupt)
        corrupt_bit = unit_bits
            ? static_cast<std::uint32_t>(
                  _rng.uniform(0, static_cast<std::int64_t>(unit_bits) -
                                      1))
            : 0;
    bool duplicate =
        _spec.duplicate > 0 && _rng.chance(_spec.duplicate);
    sim::Tick delay = 0;
    if (_spec.reorder > 0 && _rng.chance(_spec.reorder))
        delay = _spec.reorderDelay;
    if (_spec.jitterMax > 0)
        delay += _rng.uniform(0, _spec.jitterMax);

    if (doomed || lost) {
        d.drop = true;
        ++_dropped;
        return d; // a lost unit can suffer nothing else
    }
    if (corrupt) {
        d.corrupt = true;
        d.corruptBit = corrupt_bit;
        ++_corrupted;
    }
    if (duplicate) {
        d.duplicate = true;
        ++_duplicated;
    }
    d.delay = delay;
    if (d.delay != 0)
        ++_delayed;
    return d;
}

void
Injector::stamp(const obs::TraceContext &ctx, const Decision &d)
{
#if UNET_TRACE
    if (!ctx)
        return;
    if (auto *tr = _sim.trace()) {
        const char *what = d.drop ? "drop"
            : d.corrupt            ? "corrupt"
            : d.duplicate          ? "duplicate"
                                   : "delay";
        tr->record(ctx.id, obs::SpanKind::Fault, "fault." + _site,
                   _sim.now(), _sim.now(), what);
    }
#else
    (void)ctx;
    (void)d;
#endif
}

void
flipBit(std::span<std::uint8_t> bytes, std::uint32_t bit)
{
    if (bytes.empty())
        return;
    std::size_t byte = (bit / 8) % bytes.size();
    bytes[byte] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

ModelSpec &
Plan::model(const std::string &site_pattern)
{
    for (auto &[pat, spec] : _models)
        if (pat == site_pattern)
            return spec;
    _models.emplace_back(site_pattern, ModelSpec{});
    return _models.back().second;
}

bool
Plan::empty() const
{
    for (const auto &[pat, spec] : _models)
        if (!spec.inert())
            return false;
    return true;
}

namespace {

/** True if @p pattern (exact, or prefix ending in '*') covers @p site. */
bool
patternMatches(std::string_view pattern, std::string_view site)
{
    if (!pattern.empty() && pattern.back() == '*') {
        pattern.remove_suffix(1);
        return site.substr(0, pattern.size()) == pattern;
    }
    return pattern == site;
}

} // namespace

Injector *
Plan::arm(sim::Simulation &sim, std::string_view site)
{
    // Longest matching pattern wins; exact beats a wildcard of equal
    // length. Later definitions win ties (">=" below).
    const ModelSpec *best = nullptr;
    std::size_t best_len = 0;
    bool best_exact = false;
    for (const auto &[pat, spec] : _models) {
        if (!patternMatches(pat, site))
            continue;
        bool exact = pat.empty() || pat.back() != '*';
        if (best && (pat.size() < best_len ||
                     (pat.size() == best_len && best_exact && !exact)))
            continue;
        best = &spec;
        best_len = pat.size();
        best_exact = exact;
    }
    if (!best || best->inert())
        return nullptr;
    _injectors.push_back(std::make_unique<Injector>(
        sim, std::string(site), *best, _seed));
    return _injectors.back().get();
}

namespace {

double
parseDouble(std::string_view clause, std::string_view v)
{
    double out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size())
        UNET_FATAL("fault plan: bad number in '", std::string(clause),
                   "'");
    return out;
}

std::uint64_t
parseU64(std::string_view clause, std::string_view v)
{
    std::uint64_t out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size())
        UNET_FATAL("fault plan: bad integer in '", std::string(clause),
                   "'");
    return out;
}

/** Parse "a/b/c[/d]" Gilbert-Elliott shorthand. */
void
parseGe(ModelSpec &m, std::string_view clause, std::string_view v)
{
    std::vector<double> parts;
    while (!v.empty()) {
        std::size_t slash = v.find('/');
        parts.push_back(parseDouble(clause, v.substr(0, slash)));
        v = slash == std::string_view::npos ? std::string_view{}
                                           : v.substr(slash + 1);
    }
    if (parts.size() < 3 || parts.size() > 4)
        UNET_FATAL("fault plan: ge= wants Pgb/Pbg/PlossBad[/PlossGood] "
                   "in '", std::string(clause), "'");
    m.gilbert = true;
    m.goodToBad = parts[0];
    m.badToGood = parts[1];
    m.badLoss = parts[2];
    m.goodLoss = parts.size() == 4 ? parts[3] : 0.0;
}

} // namespace

Plan
Plan::parse(std::string_view scenario)
{
    Plan plan;
    std::string_view rest = scenario;
    auto is_sep = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == ',' ||
            c == ';';
    };
    while (!rest.empty()) {
        while (!rest.empty() && is_sep(rest.front()))
            rest.remove_prefix(1);
        if (rest.empty())
            break;
        std::size_t end = 0;
        while (end < rest.size() && !is_sep(rest[end]))
            ++end;
        std::string_view clause = rest.substr(0, end);
        rest.remove_prefix(end);

        std::size_t eq = clause.find('=');
        if (eq == std::string_view::npos)
            UNET_FATAL("fault plan: clause '", std::string(clause),
                       "' is not key=value");
        std::string_view key = clause.substr(0, eq);
        std::string_view val = clause.substr(eq + 1);

        if (key == "seed") {
            plan.setSeed(parseU64(clause, val));
            continue;
        }

        // <site>.<knob>=<value>: the knob is the last dotted component.
        std::size_t dot = key.rfind('.');
        if (dot == std::string_view::npos)
            UNET_FATAL("fault plan: unknown key '", std::string(key),
                       "' (want seed= or <site>.<knob>=)");
        std::string site(key.substr(0, dot));
        std::string_view knob = key.substr(dot + 1);
        ModelSpec &m = plan.model(site);
        if (knob == "drop")
            m.drop = parseDouble(clause, val);
        else if (knob == "corrupt")
            m.corrupt = parseDouble(clause, val);
        else if (knob == "dup")
            m.duplicate = parseDouble(clause, val);
        else if (knob == "reorder")
            m.reorder = parseDouble(clause, val);
        else if (knob == "reorder_delay_us")
            m.reorderDelay =
                sim::microsecondsF(parseDouble(clause, val));
        else if (knob == "jitter_us")
            m.jitterMax = sim::microsecondsF(parseDouble(clause, val));
        else if (knob == "drop_every")
            m.dropEvery = parseU64(clause, val);
        else if (knob == "ge")
            parseGe(m, clause, val);
        else
            UNET_FATAL("fault plan: unknown knob '", std::string(knob),
                       "' in '", std::string(clause), "'");
    }
    return plan;
}

} // namespace unet::fault
