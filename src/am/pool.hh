/**
 * @file
 * Fixed-chunk allocator over a slice of an endpoint buffer area.
 *
 * "The management of the transmit and receive buffers is entirely up to
 * the application" — this is the allocation policy the Active Message
 * layer (an application of U-Net) chooses: equal-size chunks, free-list
 * recycling.
 */

#ifndef UNET_AM_POOL_HH
#define UNET_AM_POOL_HH

#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "unet/types.hh"

namespace unet::am {

/** Fixed-size chunk pool addressed by buffer-area offsets. */
class BufferPool
{
  public:
    /**
     * @param base       Starting offset within the buffer area.
     * @param chunk_size Bytes per chunk.
     * @param count      Number of chunks.
     */
    BufferPool(std::uint32_t base, std::uint32_t chunk_size,
               std::size_t count)
        : chunkSize(chunk_size)
    {
        for (std::size_t i = 0; i < count; ++i)
            freeList.push_back(
                {base + static_cast<std::uint32_t>(i) * chunk_size,
                 chunk_size});
    }

    /** Grab a chunk, or nullopt if the pool is dry. */
    std::optional<BufferRef>
    acquire()
    {
        if (freeList.empty())
            return std::nullopt;
        BufferRef ref = freeList.back();
        freeList.pop_back();
        return ref;
    }

    /** Return a chunk (any length ≤ chunk size is accepted back). */
    void
    release(BufferRef ref)
    {
        freeList.push_back({ref.offset, chunkSize});
    }

    std::size_t available() const { return freeList.size(); }
    std::uint32_t chunkBytes() const { return chunkSize; }

  private:
    std::uint32_t chunkSize;
    std::vector<BufferRef> freeList;
};

} // namespace unet::am

#endif // UNET_AM_POOL_HH
