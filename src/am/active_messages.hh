/**
 * @file
 * Active Messages over U-Net.
 *
 * "Split-C is implemented over Active Messages, a low-cost RPC
 * mechanism, providing flow control and reliable transfer, which has
 * been implemented over U-Net." This layer provides exactly that:
 *
 *  - request/reply messages carrying a handler id, four word arguments,
 *    and an optional payload;
 *  - per-channel Go-Back-N reliability: cumulative acknowledgements
 *    piggybacked on every message (with delayed explicit ACKs when
 *    traffic is one-way), timeout-driven retransmission;
 *  - window flow control: a sender blocks (polling) while its channel
 *    has `window` unacknowledged messages outstanding;
 *  - bulk transfer (store) segmented to the substrate's message size.
 *
 * Faithful to its 1990s user-level ancestry, the library has no
 * background thread: retransmission timers are checked whenever the
 * application calls in (poll / request / reply), and blocking waits
 * wake periodically to do so.
 */

#ifndef UNET_AM_ACTIVE_MESSAGES_HH
#define UNET_AM_ACTIVE_MESSAGES_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "am/pool.hh"
#include "check/credits.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"
#include "unet/unet.hh"

namespace unet::am {

/** Handler index (the "instruction" of an active message). */
using HandlerId = std::uint8_t;

/** Word arguments carried by every message. */
using Word = std::uint32_t;
using Args = std::array<Word, 4>;

/** Identifies the requester so a handler can reply. */
struct Token
{
    ChannelId channel = invalidChannel;
};

/** Tuning knobs for the AM layer. */
struct AmSpec
{
    /** Per-channel send window (outstanding unacked messages). */
    std::size_t window = 8;

    /** Retransmit timeout. */
    sim::Tick retransmitTimeout = sim::milliseconds(1);

    /** Give up (mark the channel dead) after this many retries. */
    int maxRetries = 16;

    /** Send an explicit ACK after this many unacked receives... */
    std::size_t ackEvery = 4;

    /** ...or when the oldest pending ACK is this stale at poll time. */
    sim::Tick ackDelay = sim::microseconds(50);

    /** Bulk-transfer chunk size (payload bytes per fragment); clamped
     *  to the substrate's maximum message size. */
    std::size_t bulkMtu = 4096;

    /** Receive buffers posted to the endpoint's free queue. */
    std::size_t rxBuffers = 32;

    /** Application CPU cost of one poll call. */
    sim::Tick pollCost = sim::nanoseconds(300);

    /** Application CPU cost of handling one inbound message. */
    sim::Tick handleCost = sim::nanoseconds(400);

    /** Application CPU cost of composing one outbound message. */
    sim::Tick composeCost = sim::nanoseconds(400);
};

/** The Active Message layer bound to one U-Net endpoint. */
class ActiveMessages
{
  public:
    /** Bytes of AM header inside each U-Net message. */
    static constexpr std::size_t headerBytes = 20;

    /** Handler signature: source token, word args, payload view. */
    using Handler = std::function<void(sim::Process &, Token,
                                       const Args &,
                                       std::span<const std::uint8_t>)>;

    /** Bulk sink: where store() payloads land (dst_addr is the
     *  receiver-side address carried by the transfer). */
    using BulkSink = std::function<void(std::uint32_t dst_addr,
                                        std::span<const std::uint8_t>)>;

    /**
     * @param unet The U-Net instance of this host.
     * @param ep   Endpoint to run over (owned by the app process).
     */
    ActiveMessages(UNet &unet, Endpoint &ep, AmSpec spec = {});

    /** Register the handler for @p id. */
    void setHandler(HandlerId id, Handler fn);

    /** Register where bulk-store payloads are written. */
    void setBulkSink(BulkSink sink) { bulkSink = std::move(sink); }

    /** Start reliability state for a (previously connected) channel. */
    void openChannel(ChannelId chan);

    /**
     * Send a request. Blocks (polling) while the channel window is
     * full. @return false if the channel has died (retries exhausted).
     */
    bool request(sim::Process &proc, ChannelId chan, HandlerId handler,
                 const Args &args,
                 std::span<const std::uint8_t> payload = {});

    /** Send a reply from inside a handler. */
    bool reply(sim::Process &proc, Token token, HandlerId handler,
               const Args &args,
               std::span<const std::uint8_t> payload = {});

    /** Handler id meaning "no completion handler". */
    static constexpr HandlerId noHandler = 0xFF;

    /**
     * Bulk transfer: deliver @p data to the peer's bulk sink at
     * @p dst_addr, then invoke @p done_handler there with
     * args = {dst_addr, total, 0, 0}. Blocks while segmenting.
     */
    bool store(sim::Process &proc, ChannelId chan, std::uint32_t dst_addr,
               std::span<const std::uint8_t> data,
               HandlerId done_handler = noHandler);

    /**
     * Drain the receive queue, dispatch handlers, process ACKs and
     * retransmissions. @return number of messages handled.
     */
    int poll(sim::Process &proc);

    /**
     * Poll until @p pred() holds. Blocks between polls; wakes on
     * arrivals and periodically for timeout handling.
     * @param timeout relative time budget (default: unbounded).
     * @return false if @p timeout elapsed first.
     */
    bool pollUntil(sim::Process &proc, const std::function<bool()> &pred,
                   sim::Tick timeout = sim::maxTick);

    /** True if every channel's window is empty (all sends ACKed). */
    bool idle() const;

    /** Block until idle() — e.g. before reading results.
     *  @param timeout relative time budget (default: unbounded). */
    bool drain(sim::Process &proc, sim::Tick timeout = sim::maxTick);

    Endpoint &endpoint() { return ep; }
    const AmSpec &spec() const { return _spec; }

    /** Dump per-channel protocol state to stderr (debugging aid). */
    void debugDump(const char *tag) const;

    /** @name Statistics. @{ */
    /** TX chunks currently free (pool accounting invariant: returns to
     *  the initial value once traffic quiesces — no leaks through the
     *  retransmit quarantine). */
    std::size_t txChunksFree() const { return txPool.available(); }
    std::size_t txChunksQuarantined() const { return zombieChunks.size(); }

    /** Chunks currently referenced by unacknowledged window entries
     *  (free + quarantined + held always equals the pool size). */
    std::size_t
    txChunksHeld() const
    {
        std::size_t held = 0;
        for (const auto &[chan, ch] : channels)
            for (const auto &pending : ch.window)
                if (pending.chunk)
                    ++held;
        return held;
    }
    std::uint64_t sent() const { return _sent.value(); }
    std::uint64_t received() const { return _received.value(); }
    std::uint64_t retransmits() const { return _retransmits.value(); }
    std::uint64_t duplicates() const { return _duplicates.value(); }
    std::uint64_t explicitAcks() const { return _explicitAcks.value(); }
    std::uint64_t deadChannels() const { return _dead.value(); }
    /** @} */

  private:
    /** Message types on the wire. */
    enum class Type : std::uint8_t {
        Request = 1,
        Reply = 2,
        Ack = 3,
        BulkFragment = 4,
    };

    struct Pending
    {
        SendDescriptor desc;
        std::uint8_t seq = 0;
        std::optional<BufferRef> chunk; ///< TX pool chunk to release

        /** A duplicate descriptor for this message was posted (it may
         *  still sit unconsumed in the device path, referencing the
         *  chunk). */
        bool retransmitted = false;
    };

    struct ChannelState
    {
        bool open = false;
        bool dead = false;

        std::uint8_t txNext = 0;      ///< next sequence to assign
        std::deque<Pending> window;   ///< unacked, oldest first
        sim::Tick lastTx = 0;
        int retries = 0;

        std::uint8_t rxExpected = 0;  ///< next in-order sequence
        std::size_t unackedRx = 0;    ///< receives since last ack out
        sim::Tick oldestUnackedRx = 0;

        /** Credit auditor shadowing `window` (UNET_CHECK builds). */
        check::CreditWindow credits;

        /** In-progress inbound bulk transfers: id -> bytes seen. */
        std::map<Word, std::uint32_t> bulkSeen;
    };

    ChannelState &state(ChannelId chan);

    /** Serialize and hand one message to U-Net (window bookkeeping
     *  done by the caller). */
    bool emit(sim::Process &proc, ChannelId chan, Type type,
              std::uint8_t seq, HandlerId handler, const Args &args,
              std::span<const std::uint8_t> payload, Pending *out,
              bool is_retransmit);

    /** Queue a message reliably, blocking for window space. */
    bool sendReliable(sim::Process &proc, ChannelId chan, Type type,
                      HandlerId handler, const Args &args,
                      std::span<const std::uint8_t> payload);

    void processInbound(sim::Process &proc, const RecvDescriptor &rd);
    void processAck(ChannelState &ch, std::uint8_t ack);
    void checkTimeouts(sim::Process &proc);
    void flushAcks(sim::Process &proc, bool force = false);
    void sendAck(sim::Process &proc, ChannelId chan);

    UNet &unet;
    Endpoint &ep;
    AmSpec _spec;

    std::vector<Handler> handlers;
    BulkSink bulkSink;
    std::map<ChannelId, ChannelState> channels;
    BufferPool txPool;
    Word nextBulkId = 1;

    /**
     * Zero-copy quarantine. A chunk whose message was ACKed but also
     * retransmitted cannot be reused yet: the duplicate descriptor may
     * still be queued in the send queue or device ring, and reusing
     * the chunk would let that stale descriptor transmit mangled
     * bytes. Zombies return to the pool once the device has no
     * unconsumed descriptors left (txBacklog() == 0).
     */
    std::vector<BufferRef> zombieChunks;

    void reclaimZombies();

    sim::Counter _sent;
    sim::Counter _received;
    sim::Counter _retransmits;
    sim::Counter _duplicates;
    sim::Counter _explicitAcks;
    sim::Counter _dead;

    /** Trace track for handler-dispatch spans. */
    std::string _trackApp;

    /** Declared after the counters it registers. */
    obs::MetricGroup _metrics;
};

} // namespace unet::am

#endif // UNET_AM_ACTIVE_MESSAGES_HH
