#include "am/active_messages.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace unet::am {

namespace {

void
putWord(std::vector<std::uint8_t> &out, Word w)
{
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
}

Word
getWord(std::span<const std::uint8_t> in, std::size_t off)
{
    return static_cast<Word>(in[off]) |
        (static_cast<Word>(in[off + 1]) << 8) |
        (static_cast<Word>(in[off + 2]) << 16) |
        (static_cast<Word>(in[off + 3]) << 24);
}

} // namespace

ActiveMessages::ActiveMessages(UNet &unet, Endpoint &ep, AmSpec spec)
    : unet(unet), ep(ep), _spec(spec), handlers(256),
      txPool(0, 0, 0), // replaced below once the layout is known
      _trackApp(unet.host().name() + ".app"),
      _metrics(unet.host().simulation().metrics(),
               unet.host().simulation().metrics().uniquePrefix(
                   "host." + unet.host().name() + ".am"))
{
    _metrics.counter("sent", _sent);
    _metrics.counter("received", _received);
    _metrics.counter("retransmits", _retransmits);
    _metrics.counter("duplicates", _duplicates);
    _metrics.counter("explicitAcks", _explicitAcks);
    _metrics.counter("deadChannels", _dead);

    // Carve the endpoint buffer area: receive chunks first (posted to
    // the free queue), transmit chunks from the remainder.
    std::size_t chunk = std::min<std::size_t>(
        _spec.bulkMtu + headerBytes, unet.maxMessageBytes());
    std::size_t total = ep.buffers().size();
    std::size_t rx_bytes = _spec.rxBuffers * chunk;
    if (rx_bytes >= total)
        UNET_FATAL("endpoint buffer area too small for ",
                   _spec.rxBuffers, " receive chunks of ", chunk,
                   " bytes");
    std::size_t tx_chunks = (total - rx_bytes) / chunk;
    if (tx_chunks < _spec.window)
        UNET_FATAL("buffer area leaves only ", tx_chunks,
                   " TX chunks; need at least the window (",
                   _spec.window, ")");

    // Boot-time posting: the application hands its receive buffers to
    // U-Net before any traffic flows.
    for (std::size_t i = 0; i < _spec.rxBuffers; ++i) {
        BufferRef buf{static_cast<std::uint32_t>(i * chunk),
                      static_cast<std::uint32_t>(chunk)};
        if (ep.freeQueue().push(buf))
            ep.ownership().postFree(buf);
    }

    txPool = BufferPool(static_cast<std::uint32_t>(rx_bytes),
                        static_cast<std::uint32_t>(chunk), tx_chunks);
}

void
ActiveMessages::setHandler(HandlerId id, Handler fn)
{
    if (id == noHandler)
        UNET_FATAL("handler id 0xFF is reserved");
    handlers[id] = std::move(fn);
}

void
ActiveMessages::openChannel(ChannelId chan)
{
    channels[chan].open = true;
}

ActiveMessages::ChannelState &
ActiveMessages::state(ChannelId chan)
{
    auto &ch = channels[chan];
    ch.open = true;
    ch.credits.setLimit(_spec.window);
    return ch;
}

bool
ActiveMessages::emit(sim::Process &proc, ChannelId chan, Type type,
                     std::uint8_t seq, HandlerId handler,
                     const Args &args,
                     std::span<const std::uint8_t> payload, Pending *out,
                     bool is_retransmit)
{
    ChannelState &ch = state(chan);
    auto &cpu = unet.host().cpu();
    cpu.busy(proc, _spec.composeCost);

    SendDescriptor sd;
    sd.channel = chan;

    if (is_retransmit && out) {
        // The wire bytes are still in place (inline descriptor or TX
        // chunk); just refresh the descriptor.
        sd = out->desc;
    } else {
        std::vector<std::uint8_t> wire;
        wire.reserve(headerBytes + payload.size());
        wire.push_back(static_cast<std::uint8_t>(type));
        wire.push_back(seq);
        wire.push_back(ch.rxExpected); // cumulative piggybacked ACK
        wire.push_back(handler);
        for (Word w : args)
            putWord(wire, w);
        wire.insert(wire.end(), payload.begin(), payload.end());

        if (wire.size() <= unet.inlineMax()) {
            sd.isInline = true;
            sd.inlineLength = static_cast<std::uint32_t>(wire.size());
            std::copy(wire.begin(), wire.end(), sd.inlineData.begin());
        } else {
            auto chunk = txPool.acquire();
            if (!chunk)
                UNET_PANIC("TX pool dry in emit (caller must reserve)");
            if (wire.size() > chunk->length)
                UNET_PANIC("AM message of ", wire.size(),
                           " bytes exceeds the ", chunk->length,
                           "-byte chunk");
            cpu.busy(proc, cpu.spec().memcpyTime(wire.size()));
            ep.buffers().write(*chunk, wire);
            sd.isInline = false;
            sd.fragmentCount = 1;
            sd.fragments[0] = {chunk->offset,
                               static_cast<std::uint32_t>(wire.size())};
            if (out)
                out->chunk = chunk;
            else
                txPool.release(*chunk); // unreliable one-shot (ACK)
        }
        if (out)
            out->desc = sd;

        // Piggybacking counts as acknowledging. (Retransmits carry a
        // stale ACK byte, so they do not.)
        ch.unackedRx = 0;
    }

    ++_sent;
    return unet.send(proc, ep, sd);
}

bool
ActiveMessages::sendReliable(sim::Process &proc, ChannelId chan,
                             Type type, HandlerId handler,
                             const Args &args,
                             std::span<const std::uint8_t> payload)
{
    ChannelState &ch = state(chan);
    if (ch.dead)
        return false;

    // Window flow control (and TX chunk availability for big sends).
    bool needs_chunk =
        headerBytes + payload.size() > unet.inlineMax();
    bool ok = pollUntil(proc, [&] {
        return ch.dead ||
            (ch.window.size() < _spec.window &&
             (!needs_chunk || txPool.available() > 0));
    });
    if (!ok || ch.dead)
        return false;

    Pending pending;
    pending.seq = ch.txNext;
    bool posted = emit(proc, chan, type, ch.txNext, handler, args,
                       payload, &pending, false);
    while (!posted && !ch.dead) {
        // The U-Net send queue rejected the push (device backlog).
        // The message is already composed (inline or in its TX chunk);
        // give the device time to drain and re-post as-is. No poll()
        // here: the sequence number is already assigned, so dispatching
        // handlers (which may send on this channel) would interleave
        // sequence numbers and corrupt the window ordering.
        unet.flush(proc, ep);
        proc.waitOn(ep.rxAvailable(), _spec.ackDelay);
        posted = emit(proc, chan, type, pending.seq, handler, args,
                      payload, &pending, true);
    }
    if (!posted) {
        if (pending.chunk)
            txPool.release(*pending.chunk);
        return false;
    }
    ch.txNext = static_cast<std::uint8_t>(ch.txNext + 1);
    ch.credits.acquire();
    ch.window.push_back(std::move(pending));
    ch.lastTx = unet.host().simulation().now();
    return true;
}

bool
ActiveMessages::request(sim::Process &proc, ChannelId chan,
                        HandlerId handler, const Args &args,
                        std::span<const std::uint8_t> payload)
{
    return sendReliable(proc, chan, Type::Request, handler, args,
                        payload);
}

bool
ActiveMessages::reply(sim::Process &proc, Token token, HandlerId handler,
                      const Args &args,
                      std::span<const std::uint8_t> payload)
{
    return sendReliable(proc, token.channel, Type::Reply, handler, args,
                        payload);
}

bool
ActiveMessages::store(sim::Process &proc, ChannelId chan,
                      std::uint32_t dst_addr,
                      std::span<const std::uint8_t> data,
                      HandlerId done_handler)
{
    std::size_t mtu = std::min<std::size_t>(
        {_spec.bulkMtu, unet.maxMessageBytes() - headerBytes,
         txPool.chunkBytes() > headerBytes
             ? txPool.chunkBytes() - headerBytes
             : 0});
    if (mtu == 0)
        UNET_FATAL("bulk MTU is zero; buffer area misconfigured");

    Word id = nextBulkId++;
    std::size_t off = 0;
    do {
        std::size_t frag = std::min(mtu, data.size() - off);
        Args args = {id, dst_addr, static_cast<Word>(off),
                     static_cast<Word>(data.size())};
        if (!sendReliable(proc, chan, Type::BulkFragment, done_handler,
                          args, data.subspan(off, frag)))
            return false;
        off += frag;
    } while (off < data.size());
    return true;
}

void
ActiveMessages::processAck(ChannelState &ch, std::uint8_t ack)
{
    if (ch.window.empty())
        return;
    std::uint8_t base = ch.window.front().seq;
    // Number of entries the cumulative ACK covers (mod-256 distance).
    // Retransmitted messages carry the ACK byte they were composed
    // with, so a *stale* ack (ack < base in sequence space) shows up
    // here as a huge distance. With the window far smaller than the
    // sequence space, anything beyond the window cannot be a genuine
    // cumulative ack — ignore it rather than (catastrophically)
    // treating it as covering everything outstanding.
    std::uint8_t distance = static_cast<std::uint8_t>(ack - base);
    if (distance > ch.window.size())
        return;
    std::size_t covered = distance;
    for (std::size_t i = 0; i < covered; ++i) {
        Pending &front = ch.window.front();
        if (front.chunk) {
            // Zero-copy discipline: a chunk referenced by a possibly
            // still-queued duplicate descriptor is quarantined, not
            // reused (see zombieChunks).
            if (front.retransmitted)
                zombieChunks.push_back(*front.chunk);
            else
                txPool.release(*front.chunk);
        }
        ch.credits.release();
        ch.window.pop_front();
    }
    if (covered > 0)
        ch.retries = 0; // progress resets the give-up counter
}

void
ActiveMessages::processInbound(sim::Process &proc,
                               const RecvDescriptor &rd)
{
    ++_received;
    auto &cpu = unet.host().cpu();
    cpu.busy(proc, _spec.handleCost);

    // Gather the wire bytes.
    std::vector<std::uint8_t> wire;
    if (rd.isSmall) {
        wire.assign(rd.inlineData.begin(),
                    rd.inlineData.begin() + rd.length);
    } else {
        for (std::uint8_t i = 0; i < rd.bufferCount; ++i) {
            auto span = ep.buffers().span(rd.buffers[i]);
            wire.insert(wire.end(), span.begin(), span.end());
        }
        // Recycle the receive buffers at their full pool size.
        for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
            unet.postFree(proc, ep,
                          {rd.buffers[i].offset, txPool.chunkBytes()});
    }

    if (wire.size() < headerBytes) {
        UNET_WARN("AM: runt message of ", wire.size(), " bytes");
        return;
    }

    Type type = static_cast<Type>(wire[0]);
    std::uint8_t seq = wire[1];
    std::uint8_t ack = wire[2];
    HandlerId handler = wire[3];
    Args args = {getWord(wire, 4), getWord(wire, 8), getWord(wire, 12),
                 getWord(wire, 16)};
    std::span<const std::uint8_t> payload(wire.data() + headerBytes,
                                          wire.size() - headerBytes);

    ChannelState &ch = state(rd.channel);
    processAck(ch, ack);

    if (type == Type::Ack)
        return;

    if (seq != ch.rxExpected) {
        // Duplicate or out-of-order (Go-Back-N): drop, but force an ACK
        // out so the sender resynchronizes quickly.
        ++_duplicates;
        ch.unackedRx = std::max(ch.unackedRx, _spec.ackEvery);
        return;
    }
    if (ch.unackedRx == 0)
        ch.oldestUnackedRx = unet.host().simulation().now();
    ch.rxExpected = static_cast<std::uint8_t>(ch.rxExpected + 1);
    ++ch.unackedRx;

    Token token{rd.channel};
    switch (type) {
      case Type::Request:
      case Type::Reply:
        if (!handlers[handler]) {
            UNET_WARN("AM: no handler ", static_cast<int>(handler));
        } else {
#if UNET_TRACE
            auto &simulation = unet.host().simulation();
            sim::Tick h0 = simulation.now();
#endif
            handlers[handler](proc, token, args, payload);
#if UNET_TRACE
            if (auto *tr = simulation.trace())
                tr->record(rd.trace.id, obs::SpanKind::AmHandler,
                           _trackApp, h0, simulation.now(),
                           "am handler");
#endif
        }
        break;

      case Type::BulkFragment: {
        if (bulkSink)
            bulkSink(args[1] + args[2], payload);
        else
            UNET_WARN("AM: bulk fragment with no sink registered");
        auto &seen = ch.bulkSeen[args[0]];
        seen += static_cast<std::uint32_t>(payload.size());
        if (seen >= args[3]) {
            ch.bulkSeen.erase(args[0]);
            if (handler != noHandler && handlers[handler])
                handlers[handler](proc, token,
                                  {args[1], args[3], 0, 0}, {});
        }
        break;
      }

      default:
        UNET_WARN("AM: unknown message type ",
                  static_cast<int>(type));
    }
}

void
ActiveMessages::checkTimeouts(sim::Process &proc)
{
    sim::Tick now = unet.host().simulation().now();
    for (auto &[chan, ch] : channels) {
        if (ch.dead || ch.window.empty())
            continue;
        // Exponential backoff: a peer busy in a long computation phase
        // (it only polls between phases) must not exhaust the retry
        // budget at the base timeout.
        sim::Tick timeout = _spec.retransmitTimeout
            << std::min(ch.retries, 6);
        if (now - ch.lastTx < timeout)
            continue;

        // If the data is still sitting in the device path (send queue
        // or TX ring), it has not been lost — duplicating descriptors
        // would only stuff the queue and burn the retry budget. Kick
        // the device and re-arm the timer instead.
        if (unet.txBacklog(ep) > 0) {
            unet.flush(proc, ep);
            ch.lastTx = now;
            continue;
        }

        if (++ch.retries > _spec.maxRetries) {
            UNET_WARN("AM: channel ", chan, " dead after ",
                      _spec.maxRetries, " retries");
            ch.dead = true;
            ++_dead;
            continue;
        }
        // Go-Back-N: resend everything outstanding. Mark each entry:
        // its chunk now has (potentially) multiple descriptors in
        // flight and must be quarantined on release. If the send queue
        // fills mid-burst, the remainder waits for the next timeout.
        for (auto &pending : ch.window) {
            pending.retransmitted = true;
            ++_retransmits;
            if (!emit(proc, chan, Type::Request /*unused*/,
                      pending.seq, 0, {}, {}, &pending, true))
                break;
        }
        ch.lastTx = now;
    }
}

void
ActiveMessages::reclaimZombies()
{
    if (zombieChunks.empty() || unet.txBacklog(ep) != 0)
        return;
    // No unconsumed descriptors remain anywhere in the device path, so
    // no stale reference to these chunks can exist.
    for (const auto &chunk : zombieChunks)
        txPool.release(chunk);
    zombieChunks.clear();
}

void
ActiveMessages::sendAck(sim::Process &proc, ChannelId chan)
{
    ++_explicitAcks;
    emit(proc, chan, Type::Ack, 0, 0, {0, 0, 0, 0}, {}, nullptr, false);
}

void
ActiveMessages::flushAcks(sim::Process &proc, bool force)
{
    sim::Tick now = unet.host().simulation().now();
    for (auto &[chan, ch] : channels) {
        if (ch.unackedRx == 0 || ch.dead)
            continue;
        if (force || ch.unackedRx >= _spec.ackEvery ||
            now - ch.oldestUnackedRx >= _spec.ackDelay) {
            sendAck(proc, chan);
        }
    }
}

int
ActiveMessages::poll(sim::Process &proc)
{
    auto &cpu = unet.host().cpu();
    cpu.busy(proc, _spec.pollCost);

    // Re-kick sends parked behind device-ring backpressure.
    if (!ep.sendQueue().empty())
        unet.flush(proc, ep);

    int handled = 0;
    RecvDescriptor rd;
    while (ep.poll(rd)) {
        processInbound(proc, rd);
        ++handled;
    }
    checkTimeouts(proc);
    flushAcks(proc);
    reclaimZombies();
    return handled;
}

bool
ActiveMessages::pollUntil(sim::Process &proc,
                          const std::function<bool()> &pred,
                          sim::Tick timeout)
{
    auto &simulation = unet.host().simulation();
    sim::Tick deadline = timeout == sim::maxTick
        ? sim::maxTick : simulation.now() + timeout;
    while (true) {
        // Check before polling: handlers call back into this path (e.g.
        // a handler issuing a store), and when the condition already
        // holds — window space free — no nested poll should run.
        if (pred())
            return true;
        poll(proc);
        if (pred())
            return true;
        if (simulation.now() >= deadline)
            return false;

        // Pick a wake interval: tight when ACKs are pending, the
        // retransmit period when sends are outstanding, lazy otherwise.
        sim::Tick wake = _spec.retransmitTimeout;
        for (auto &[chan, ch] : channels) {
            if (ch.unackedRx > 0)
                wake = std::min(wake, _spec.ackDelay);
        }
        wake = std::min(wake, deadline - simulation.now());
        proc.waitOn(ep.rxAvailable(), wake);
    }
}

void
ActiveMessages::debugDump(const char *tag) const
{
    std::fprintf(stderr, "[AM %s] sent=%llu recv=%llu retx=%llu "
                 "dup=%llu dead=%llu free=%zu zombie=%zu sendq=%zu\n",
                 tag, static_cast<unsigned long long>(sent()),
                 static_cast<unsigned long long>(received()),
                 static_cast<unsigned long long>(retransmits()),
                 static_cast<unsigned long long>(duplicates()),
                 static_cast<unsigned long long>(deadChannels()),
                 txPool.available(), zombieChunks.size(),
                 ep.sendQueue().size());
    for (const auto &[chan, ch] : channels) {
        std::fprintf(stderr,
                     "  chan %u: open=%d dead=%d txNext=%u "
                     "rxExpected=%u retries=%d unackedRx=%zu window=[",
                     chan, ch.open, ch.dead, ch.txNext, ch.rxExpected,
                     ch.retries, ch.unackedRx);
        for (const auto &pending : ch.window)
            std::fprintf(stderr, " %u%s%s", pending.seq,
                         pending.chunk ? "c" : "",
                         pending.retransmitted ? "r" : "");
        std::fprintf(stderr, " ]\n");
    }
}

bool
ActiveMessages::idle() const
{
    for (const auto &[chan, ch] : channels)
        if (!ch.dead && !ch.window.empty())
            return false;
    return true;
}

bool
ActiveMessages::drain(sim::Process &proc, sim::Tick timeout)
{
    return pollUntil(proc, [this] { return idle(); }, timeout);
}

} // namespace unet::am
